"""Multi-attribute BFS: decomposition trees over attribute cross products.

The paper's BFS task traverses "a decomposition tree of the cross product
over the selected attributes".  :class:`BfsGridExplorer` generalises the
1-D explorer to k-dimensional hyper-rectangles: a region is one range per
attribute, a high noisy count splits the region's *widest* dimension in
half, and regions at or below the threshold are reported.  Queries are
conjunctive ranges, so they need a k-way marginal view — register one via
``DProvDB.register_view(attributes)`` before running.

Duck-type compatible with :func:`repro.workloads.bfs.run_bfs_workload`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.analyst import Analyst
from repro.datasets.base import DatasetBundle
from repro.db.schema import IntegerDomain
from repro.exceptions import ReproError

#: A region: attribute -> inclusive (low, high) value range.
Region = tuple[tuple[str, int, int], ...]


def _widest_dimension(region: Region) -> int:
    """Index of the widest still-splittable dimension, or -1 if none."""
    best, best_width = -1, 0
    for i, (_, low, high) in enumerate(region):
        width = high - low
        if width > best_width:
            best, best_width = i, width
    return best


def _split(region: Region) -> tuple[Region, Region]:
    axis = _widest_dimension(region)
    attr, low, high = region[axis]
    mid = (low + high) // 2
    left = region[:axis] + ((attr, low, mid),) + region[axis + 1:]
    right = region[:axis] + ((attr, mid + 1, high),) + region[axis + 1:]
    return left, right


def _region_sql(table: str, region: Region) -> str:
    conditions = " AND ".join(
        f"{attr} BETWEEN {low} AND {high}" for attr, low, high in region
    )
    return f"SELECT COUNT(*) FROM {table} WHERE {conditions}"


@dataclass
class BfsGridExplorer:
    """One analyst's BFS over a k-dimensional attribute grid."""

    analyst: str
    table: str
    attributes: tuple[str, ...]
    root: Region
    threshold: float
    accuracy: float
    frontier: deque = field(default_factory=deque)
    regions_found: list[Region] = field(default_factory=list)
    queries_issued: int = 0
    queries_answered: int = 0
    queries_rejected: int = 0

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ReproError("grid BFS needs at least one attribute")
        self.frontier.append(self.root)

    @property
    def done(self) -> bool:
        return not self.frontier

    def next_sql(self) -> str:
        return _region_sql(self.table, self.frontier[0])

    def consume(self, noisy_count: float | None) -> None:
        region = self.frontier.popleft()
        self.queries_issued += 1
        if noisy_count is None:
            self.queries_rejected += 1
            return
        self.queries_answered += 1
        if noisy_count <= self.threshold:
            self.regions_found.append(region)
            return
        if _widest_dimension(region) >= 0:
            left, right = _split(region)
            self.frontier.append(left)
            self.frontier.append(right)


def make_grid_explorers(bundle: DatasetBundle, analysts: list[Analyst],
                        attributes: tuple[str, ...],
                        threshold: float = 200.0,
                        accuracy: float = 40000.0,
                        bounds: Mapping[str, tuple[int, int]] | None = None
                        ) -> list[BfsGridExplorer]:
    """One k-D explorer per analyst over the cross product of ``attributes``.

    ``bounds`` optionally restricts the root region per attribute; the
    default is each attribute's full domain.
    """
    schema = bundle.database.table(bundle.fact_table).schema
    root: list[tuple[str, int, int]] = []
    for attr in attributes:
        domain = schema.domain(attr)
        if not isinstance(domain, IntegerDomain):
            raise ReproError(f"grid BFS needs integer attributes, "
                             f"got {attr!r}")
        low, high = (bounds or {}).get(attr, (domain.low, domain.high))
        if not domain.low <= low <= high <= domain.high:
            raise ReproError(f"bounds for {attr!r} outside its domain")
        root.append((attr, low, high))
    return [
        BfsGridExplorer(
            analyst=analyst.name, table=bundle.fact_table,
            attributes=tuple(attributes), root=tuple(root),
            threshold=threshold, accuracy=accuracy,
        )
        for analyst in analysts
    ]


__all__ = ["BfsGridExplorer", "Region", "make_grid_explorers"]
