"""Randomized range queries (RRQ).

Mirrors the paper's generator: per analyst, a stream of counting range
queries ``[s, s+o]`` with the start and offset drawn from normal
distributions, over an *ordered* attribute chosen with a shared bias (all
analysts favour the same attributes, which is what makes synopsis sharing
valuable and is how two analysts come to "ask similar queries").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analyst import Analyst
from repro.datasets.base import DatasetBundle
from repro.db.schema import IntegerDomain
from repro.dp.rng import SeedLike, ensure_generator
from repro.exceptions import ReproError


@dataclass(frozen=True)
class QueryItem:
    """One workload entry: who asks what, with which accuracy bound."""

    analyst: str
    sql: str
    accuracy: float
    attribute: str = field(default="", compare=False)


def ordered_attributes(bundle: DatasetBundle) -> tuple[str, ...]:
    """View attributes with ordered (integer) domains — range-queryable."""
    schema = bundle.database.table(bundle.fact_table).schema
    return tuple(
        attr for attr in bundle.view_attributes
        if isinstance(schema.domain(attr), IntegerDomain)
    )


def _attribute_weights(num_attributes: int, bias: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Zipf-like selection bias over attributes (shared across analysts)."""
    if num_attributes < 1:
        raise ReproError("need at least one ordered attribute for RRQ")
    ranks = np.arange(1, num_attributes + 1, dtype=np.float64)
    weights = ranks ** (-bias)
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_rrq(bundle: DatasetBundle, analysts: list[Analyst],
                 queries_per_analyst: int, accuracy: float = 2500.0,
                 bias: float = 1.2, seed: SeedLike = 0
                 ) -> dict[str, list[QueryItem]]:
    """Generate the RRQ workload: ``{analyst: [QueryItem, ...]}``.

    Parameters mirror the paper's setup: each query selects one ordered
    attribute with bias, then a range ``[s, s+o]`` whose start ``s`` and
    offset ``o`` are normal draws scaled to the attribute's domain width.
    ``accuracy`` is the expected-squared-error requirement attached to every
    query (the paper's accuracy-oriented mode).
    """
    if queries_per_analyst < 0:
        raise ReproError("queries_per_analyst must be non-negative")
    rng = ensure_generator(seed)
    attributes = ordered_attributes(bundle)
    weights = _attribute_weights(len(attributes), bias, rng)
    schema = bundle.database.table(bundle.fact_table).schema
    table = bundle.fact_table

    workload: dict[str, list[QueryItem]] = {}
    for analyst in analysts:
        items: list[QueryItem] = []
        for _ in range(queries_per_analyst):
            attr = attributes[int(rng.choice(len(attributes), p=weights))]
            domain = schema.domain(attr)
            width = domain.high - domain.low
            start = int(np.clip(
                rng.normal(domain.low + width / 2.0, width / 4.0),
                domain.low, domain.high,
            ))
            offset = int(np.clip(abs(rng.normal(width / 8.0, width / 8.0)),
                                 0, domain.high - start))
            sql = (f"SELECT COUNT(*) FROM {table} "
                   f"WHERE {attr} BETWEEN {start} AND {start + offset}")
            items.append(QueryItem(analyst.name, sql, accuracy, attr))
        workload[analyst.name] = items
    return workload


__all__ = ["QueryItem", "generate_rrq", "ordered_attributes"]
