"""The breadth-first search (BFS) exploration task (paper Sec. 6.1.2).

Each analyst traverses a binary decomposition tree over an ordered
attribute's domain, looking for under-represented regions: query the noisy
count of a range; if the count is at most the threshold, the region is
reported and the branch terminates; otherwise the range splits in half and
both children are enqueued (breadth-first).  The workload is *adaptive* —
later queries depend on earlier noisy answers — and has a natural fixed
size, which is why the paper reports cumulative budget rather than query
counts for it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.analyst import Analyst
from repro.datasets.base import DatasetBundle
from repro.dp.rng import SeedLike, ensure_generator
from repro.exceptions import ReproError
from repro.workloads.rrq import ordered_attributes


@dataclass
class BfsExplorer:
    """One analyst's breadth-first traversal state."""

    analyst: str
    table: str
    attribute: str
    low: int
    high: int
    threshold: float
    accuracy: float
    frontier: deque = field(default_factory=deque)
    regions_found: list[tuple[int, int]] = field(default_factory=list)
    queries_issued: int = 0
    queries_answered: int = 0
    queries_rejected: int = 0

    def __post_init__(self) -> None:
        self.frontier.append((self.low, self.high))

    @property
    def done(self) -> bool:
        return not self.frontier

    def next_sql(self) -> str:
        low, high = self.frontier[0]
        return (f"SELECT COUNT(*) FROM {self.table} "
                f"WHERE {self.attribute} BETWEEN {low} AND {high}")

    def consume(self, noisy_count: float | None) -> None:
        """Advance the traversal given the system's (possibly refused) answer."""
        low, high = self.frontier.popleft()
        self.queries_issued += 1
        if noisy_count is None:
            # Refused: the branch cannot be explored further.
            self.queries_rejected += 1
            return
        self.queries_answered += 1
        if noisy_count <= self.threshold:
            self.regions_found.append((low, high))
            return
        if low < high:
            mid = (low + high) // 2
            self.frontier.append((low, mid))
            self.frontier.append((mid + 1, high))


@dataclass(frozen=True)
class BfsTrace:
    """Outcome of a BFS workload run."""

    #: Per step: (workload index, analyst, answered?, cumulative budget).
    steps: tuple[tuple[int, str, bool, float], ...]
    explorers: tuple[BfsExplorer, ...]

    @property
    def total_queries(self) -> int:
        return len(self.steps)

    @property
    def total_answered(self) -> int:
        return sum(1 for _, _, answered, _ in self.steps if answered)

    def cumulative_budgets(self) -> list[float]:
        return [budget for _, _, _, budget in self.steps]

    def answered_by(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for _, analyst, answered, _ in self.steps:
            if answered:
                counts[analyst] = counts.get(analyst, 0) + 1
        return counts


def make_explorers(bundle: DatasetBundle, analysts: list[Analyst],
                   threshold: float = 500.0, accuracy: float = 40000.0,
                   attributes: tuple[str, ...] | None = None
                   ) -> list[BfsExplorer]:
    """One explorer per (analyst, ordered attribute)."""
    if attributes is None:
        attributes = ordered_attributes(bundle)
    if not attributes:
        raise ReproError("no ordered attributes available for BFS")
    schema = bundle.database.table(bundle.fact_table).schema
    explorers = []
    for analyst in analysts:
        for attr in attributes:
            domain = schema.domain(attr)
            explorers.append(BfsExplorer(
                analyst=analyst.name, table=bundle.fact_table,
                attribute=attr, low=domain.low, high=domain.high,
                threshold=threshold, accuracy=accuracy,
            ))
    return explorers


def run_bfs_workload(system, explorers: list[BfsExplorer],
                     schedule: str = "round_robin", seed: SeedLike = 0,
                     max_steps: int = 100000) -> BfsTrace:
    """Drive explorers against any query system with a ``try_submit`` API.

    ``schedule`` interleaves the live explorers round-robin or uniformly at
    random; ``max_steps`` guards against pathological noise keeping a
    traversal alive indefinitely.
    """
    if schedule not in ("round_robin", "random"):
        raise ReproError(f"unknown schedule {schedule!r}")
    rng = ensure_generator(seed)
    steps: list[tuple[int, str, bool, float]] = []
    index = 0
    position = 0
    while index < max_steps:
        live = [e for e in explorers if not e.done]
        if not live:
            break
        if schedule == "round_robin":
            explorer = live[position % len(live)]
            position += 1
        else:
            explorer = live[int(rng.integers(0, len(live)))]
        answer = system.try_submit(explorer.analyst, explorer.next_sql(),
                                   accuracy=explorer.accuracy)
        explorer.consume(None if answer is None else answer.value)
        steps.append((index, explorer.analyst, answer is not None,
                      system.total_consumed()))
        index += 1
    return BfsTrace(tuple(steps), tuple(explorers))


__all__ = ["BfsExplorer", "BfsTrace", "make_explorers", "run_bfs_workload"]
