"""Interleaving per-analyst query streams (paper's two query sequences)."""

from __future__ import annotations

from typing import Mapping, Sequence, TypeVar

from repro.dp.rng import SeedLike, ensure_generator

T = TypeVar("T")


def interleave_round_robin(per_analyst: Mapping[str, Sequence[T]]) -> list[T]:
    """Analysts take turns; exhausted analysts drop out of the rotation."""
    queues = {name: list(items) for name, items in per_analyst.items()}
    order = list(queues)
    merged: list[T] = []
    position = 0
    while any(queues.values()):
        name = order[position % len(order)]
        if queues[name]:
            merged.append(queues[name].pop(0))
        position += 1
    return merged


def interleave_random(per_analyst: Mapping[str, Sequence[T]],
                      seed: SeedLike = 0) -> list[T]:
    """A uniformly random non-exhausted analyst is selected each step."""
    rng = ensure_generator(seed)
    queues = {name: list(items) for name, items in per_analyst.items()}
    merged: list[T] = []
    while True:
        live = [name for name, queue in queues.items() if queue]
        if not live:
            return merged
        name = live[int(rng.integers(0, len(live)))]
        merged.append(queues[name].pop(0))


__all__ = ["interleave_random", "interleave_round_robin"]
