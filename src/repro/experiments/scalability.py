"""Scalability of the provenance machinery (paper Appendix C.1).

The provenance table is an ``n x m`` matrix over analysts and views; the
paper argues its overhead stays negligible and its storage can be sparse.
This experiment measures per-query latency and provenance-table footprint as
the analyst count grows, holding the workload per analyst fixed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin


@dataclass(frozen=True)
class ScalabilityRow:
    mechanism: str
    num_analysts: int
    num_views: int
    answered: int
    per_query_ms: float
    matrix_entries: int
    nonzero_entries: int


def run_scalability(dataset: str = "adult",
                    analyst_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
                    mechanism: str = "dprovdb",
                    queries_per_analyst: int = 40,
                    accuracy: float = 20000.0, epsilon: float = 6.4,
                    num_rows: int | None = None,
                    seed: int = 0) -> list[ScalabilityRow]:
    """Per-query latency and table footprint vs analyst count."""
    rows: list[ScalabilityRow] = []
    for count in analyst_counts:
        privileges = tuple(min(10, 1 + i % 10) for i in range(count))
        analysts = default_analysts(privileges)
        bundle = load_bundle(dataset, num_rows, seed)
        workload = generate_rrq(
            bundle, analysts, queries_per_analyst, accuracy=accuracy,
            seed=stable_seed("rrq_scal", count, seed),
        )
        items = interleave_round_robin(workload)
        system = make_system(mechanism, bundle, analysts, epsilon,
                             seed=stable_seed("scal", mechanism, count,
                                              seed))
        system.setup()
        answered = 0
        started = time.perf_counter()
        for item in items:
            if system.try_submit(item.analyst, item.sql,
                                 accuracy=item.accuracy) is not None:
                answered += 1
        elapsed = time.perf_counter() - started
        matrix = system.provenance_matrix()
        rows.append(ScalabilityRow(
            mechanism=mechanism, num_analysts=count,
            num_views=matrix.shape[1], answered=answered,
            per_query_ms=(elapsed * 1000.0 / max(1, len(items))),
            matrix_entries=int(matrix.size),
            nonzero_entries=int((matrix > 0).sum()),
        ))
    return rows


def format_scalability(rows: list[ScalabilityRow]) -> str:
    table = [
        [r.num_analysts, r.num_views, r.answered, r.per_query_ms,
         r.matrix_entries, r.nonzero_entries,
         r.nonzero_entries / max(1, r.matrix_entries)]
        for r in rows
    ]
    return format_table(
        ["#analysts", "#views", "#answered", "per-query ms",
         "matrix cells", "nonzero", "density"],
        table,
        title=f"provenance scalability ({rows[0].mechanism})" if rows else "",
    )


__all__ = ["ScalabilityRow", "format_scalability", "run_scalability"]
