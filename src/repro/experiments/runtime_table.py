"""E3 / E11 — Tables 1 and 3: runtime performance comparison.

Setup time (materialising exact views / static synopses), running time over
a fixed workload, number of queries answered, and per-query time — for the
five systems, on TPC-H (Table 1) or Adult (Table 3).  View-based systems pay
a large setup cost but answer queries in milliseconds; Chorus-based systems
skip setup and pay a full scan per query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_workload
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin

DEFAULT_SYSTEMS = ("dprovdb", "vanilla", "sprivatesql", "chorus", "chorus_p")


@dataclass(frozen=True)
class RuntimeRow:
    system: str
    setup_ms: float
    running_ms: float
    answered: float
    per_query_ms: float


def run_runtime_table(dataset: str = "tpch",
                      systems: tuple[str, ...] = DEFAULT_SYSTEMS,
                      epsilon: float = 3.2,
                      queries_per_analyst: int = 100,
                      accuracy: float = 40000.0,
                      privileges: tuple[int, ...] = (1, 4),
                      repeats: int = 4, num_rows: int | None = None,
                      seed: int = 0) -> list[RuntimeRow]:
    """Regenerate Table 1 (``dataset='tpch'``) or Table 3 (``'adult'``)."""
    analysts = default_analysts(privileges)
    rows: list[RuntimeRow] = []
    for system_name in systems:
        setup_ms, running_ms, answered = [], [], []
        for repeat in range(repeats):
            run_seed = stable_seed("runtime", dataset, system_name, repeat,
                                   seed)
            bundle = load_bundle(dataset, num_rows, seed)
            workload = generate_rrq(
                bundle, analysts, queries_per_analyst, accuracy=accuracy,
                seed=stable_seed("rrq_rt", dataset, seed),
            )
            items = interleave_round_robin(workload)
            system = make_system(system_name, bundle, analysts, epsilon,
                                 seed=run_seed)
            result = run_workload(system, items, epsilon, "round_robin")
            setup_ms.append(result.setup_seconds * 1000.0)
            running_ms.append(result.running_seconds * 1000.0)
            answered.append(result.total_answered)
        mean_answered = float(np.mean(answered))
        mean_running = float(np.mean(running_ms))
        rows.append(RuntimeRow(
            system=system_name,
            setup_ms=float(np.mean(setup_ms)),
            running_ms=mean_running,
            answered=mean_answered,
            per_query_ms=(mean_running / mean_answered
                          if mean_answered else 0.0),
        ))
    return rows


def format_runtime_table(rows: list[RuntimeRow], dataset: str) -> str:
    table_rows = []
    for row in rows:
        setup = "N/A" if row.setup_ms == 0.0 else f"{row.setup_ms:.2f}"
        table_rows.append([row.system, setup, row.running_ms, row.answered,
                           row.per_query_ms])
    return format_table(
        ["system", "setup (ms)", "running (ms)", "#queries",
         "per-query (ms)"],
        table_rows,
        title=f"runtime performance comparison ({dataset})",
    )


__all__ = ["DEFAULT_SYSTEMS", "RuntimeRow", "format_runtime_table",
           "run_runtime_table"]
