"""Experiment harness: one regenerator per paper table/figure.

Every module exposes a ``run_*`` function returning structured results and a
``format_*`` function printing the same rows/series the paper reports.  The
``benchmarks/`` directory wires each of these into a pytest-benchmark target;
``EXPERIMENTS.md`` records paper-vs-measured outcomes.

Index (see DESIGN.md section 3):

=======  ==========================================  =============================
Exp id   Paper artifact                              Module
=======  ==========================================  =============================
E1/E9    Fig. 3 / Fig. 10 end-to-end RRQ             ``end_to_end``
E2       Fig. 4 BFS cumulative budget                ``bfs_budget``
E3/E11   Table 1 / Table 3 runtime                   ``runtime_table``
E4       Fig. 5 cached synopses vs workload size     ``cached_synopses``
E5/E10   Fig. 6 / Fig. 11 additive GM vs vanilla     ``additive_vs_vanilla``
E6       Fig. 7 constraint expansion (tau)           ``constraint_expansion``
E7       Fig. 8 delta sweep                          ``delta_sweep``
E8       Fig. 9 translation validation + rel. error  ``translation_validation``
RQ1      collusion lower/upper bounds (Thm. 3.2)     ``collusion``
=======  ==========================================  =============================
"""

from repro.experiments.systems import SYSTEM_NAMES, default_analysts, make_system
from repro.experiments.runner import RunResult, run_workload

__all__ = [
    "RunResult",
    "SYSTEM_NAMES",
    "default_analysts",
    "make_system",
    "run_workload",
]
