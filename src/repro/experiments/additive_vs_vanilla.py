"""E5 / E10 — Figures 6 and 11: additive GM vs vanilla, constraint settings.

Two sweeps: utility versus the number of analysts (fixed epsilon), and
utility versus epsilon (two analysts), comparing ``DProvDB-l_max`` (Def. 11),
``DProvDB-l_sum`` (additive mechanism with Def. 10 constraints) and
``Vanilla-l_sum`` (Def. 10).  The paper's headline: the additive approach's
advantage grows with the number of analysts (~2-4x at six analysts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_workload
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin

COMPARED = ("dprovdb", "dprovdb_lsum", "vanilla")
LEGEND = {"dprovdb": "DProvDB-l_max", "dprovdb_lsum": "DProvDB-l_sum",
          "vanilla": "Vanilla-l_sum"}


@dataclass(frozen=True)
class ComponentCell:
    system: str
    num_analysts: int
    epsilon: float
    answered: float


def _privileges_for(count: int) -> tuple[int, ...]:
    """Privilege ladder 1..count capped at 10 (2 analysts -> (1, 4) default)."""
    if count == 2:
        return (1, 4)
    return tuple(min(10, 1 + i) for i in range(count))


def run_analyst_sweep(dataset: str = "adult",
                      analyst_counts: tuple[int, ...] = (2, 3, 4, 5, 6),
                      epsilon: float = 3.2,
                      queries_per_analyst: int = 200,
                      accuracy: float = 10000.0, repeats: int = 2,
                      num_rows: int | None = None,
                      seed: int = 0) -> list[ComponentCell]:
    """Left panel of Fig. 6 / Fig. 11: utility vs #analysts."""
    cells: list[ComponentCell] = []
    for count in analyst_counts:
        analysts = default_analysts(_privileges_for(count))
        for system_name in COMPARED:
            counts = []
            for repeat in range(repeats):
                run_seed = stable_seed("fig6a", system_name, count, repeat,
                                       seed)
                bundle = load_bundle(dataset, num_rows, seed)
                workload = generate_rrq(
                    bundle, analysts, queries_per_analyst, accuracy=accuracy,
                    seed=stable_seed("rrq6", count, seed),
                )
                items = interleave_round_robin(workload)
                system = make_system(system_name, bundle, analysts, epsilon,
                                     seed=run_seed)
                result = run_workload(system, items, epsilon, "round_robin")
                counts.append(result.total_answered)
            cells.append(ComponentCell(system_name, count, epsilon,
                                       float(np.mean(counts))))
    return cells


def run_epsilon_sweep(dataset: str = "adult",
                      epsilons: tuple[float, ...] = (0.8, 1.6, 3.2, 6.4),
                      queries_per_analyst: int = 200,
                      accuracy: float = 10000.0, repeats: int = 2,
                      num_rows: int | None = None,
                      seed: int = 0) -> list[ComponentCell]:
    """Right panel of Fig. 6 / Fig. 11: utility vs epsilon, two analysts."""
    analysts = default_analysts((1, 4))
    cells: list[ComponentCell] = []
    for epsilon in epsilons:
        for system_name in COMPARED:
            counts = []
            for repeat in range(repeats):
                run_seed = stable_seed("fig6b", system_name, epsilon, repeat,
                                       seed)
                bundle = load_bundle(dataset, num_rows, seed)
                workload = generate_rrq(
                    bundle, analysts, queries_per_analyst, accuracy=accuracy,
                    seed=stable_seed("rrq6b", seed),
                )
                items = interleave_round_robin(workload)
                system = make_system(system_name, bundle, analysts, epsilon,
                                     seed=run_seed)
                result = run_workload(system, items, epsilon, "round_robin")
                counts.append(result.total_answered)
            cells.append(ComponentCell(system_name, 2, epsilon,
                                       float(np.mean(counts))))
    return cells


def format_component(cells: list[ComponentCell], by: str = "num_analysts") -> str:
    keys = sorted({getattr(c, by) for c in cells})
    systems = list(dict.fromkeys(c.system for c in cells))
    rows = []
    for system in systems:
        row = [LEGEND.get(system, system)]
        for key in keys:
            cell = next(c for c in cells
                        if c.system == system and getattr(c, by) == key)
            row.append(cell.answered)
        rows.append(row)
    label = "#analysts" if by == "num_analysts" else "eps"
    return format_table(
        ["system"] + [f"{label}={k}" for k in keys], rows,
        title=f"additive GM vs vanilla: #answered by {label}",
    )


__all__ = ["COMPARED", "ComponentCell", "format_component",
           "run_analyst_sweep", "run_epsilon_sweep"]
