"""Plain-text table formatting for the experiment harness."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table (the harness's stand-in for plots)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


__all__ = ["format_table"]
