"""Service-layer throughput: batched planning vs one-query-at-a-time.

Not a figure from the paper — this benchmarks the serving front-end added
on top of the engine (:mod:`repro.service`).  The same mixed multi-analyst
workload (RRQs, GROUP BY histograms, BFS-style dyadic ranges) is replayed
across N threads twice: ``single`` submits queries in arrival order,
``batched`` routes slices through the view-grouping planner.  Expected
shape: batched answers at least as many queries at a higher rate, with a
higher cache hit rate and *less* budget spent (strictest-first ordering
avoids redundant synopsis refreshes).
"""

from __future__ import annotations

from repro.core.analyst import Analyst
from repro.datasets import load_adult, load_tpch
from repro.dp.rng import SeedLike
from repro.service.loadgen import (
    MODES,
    ThroughputResult,
    build_mixed_workload,
    format_throughput,
    run_throughput,
)
from repro.service.service import QueryService

#: Privilege ladder the analysts cycle through (paper's 1..10 scale).
_PRIVILEGES = (1, 2, 4, 6, 8, 10)


def make_service_analysts(num_analysts: int) -> list[Analyst]:
    """``num_analysts`` analysts over the default privilege ladder."""
    return [Analyst(f"analyst_{i:02d}", _PRIVILEGES[i % len(_PRIVILEGES)])
            for i in range(num_analysts)]


def run_service_throughput(dataset: str = "adult",
                           num_rows: int | None = 12000,
                           num_analysts: int = 8,
                           queries_per_analyst: int = 150,
                           threads: int = 8,
                           batch_size: int = 32,
                           epsilon: float = 12.0,
                           accuracy: float = 40000.0,
                           mechanism: str = "additive",
                           max_cached_synopses: int = 256,
                           repeats: int = 1,
                           seed: SeedLike = 0) -> list[ThroughputResult]:
    """One run per (mode, repeat); fresh service per run, same workload."""
    loader = load_adult if dataset == "adult" else load_tpch
    kwargs = ({"num_rows": num_rows} if dataset == "adult"
              else {"lineitem_rows": num_rows})
    if num_rows is None:
        kwargs = {}
    bundle = loader(seed=seed, **kwargs)
    analysts = make_service_analysts(num_analysts)
    workload = build_mixed_workload(bundle, analysts, queries_per_analyst,
                                    accuracy=accuracy, seed=seed)
    results: list[ThroughputResult] = []
    for mode in MODES:
        for _ in range(max(1, repeats)):
            service = QueryService.build(
                bundle, analysts, epsilon, mechanism=mechanism,
                max_cached_synopses=max_cached_synopses, seed=seed,
            )
            results.append(run_throughput(service, analysts, workload,
                                          mode=mode, threads=threads,
                                          batch_size=batch_size))
    return results


def format_service_throughput(results: list[ThroughputResult]) -> str:
    """The ``bench-service`` report, plus a batched-vs-single speedup line."""
    report = format_throughput(
        results, title="service throughput: batched planning vs single")
    by_mode: dict[str, list[ThroughputResult]] = {}
    for result in results:
        by_mode.setdefault(result.mode, []).append(result)
    if len(by_mode) == 2:
        single = max(r.queries_per_second for r in by_mode["single"])
        batched = max(r.queries_per_second for r in by_mode["batched"])
        if single > 0:
            report += (f"\nbatched/single speedup: {batched / single:.2f}x "
                       f"(best of {len(by_mode['batched'])})")
    return report


__all__ = [
    "format_service_throughput",
    "make_service_analysts",
    "run_service_throughput",
]
