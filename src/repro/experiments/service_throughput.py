"""Service-layer throughput: batched planning, sharded vs global execution.

Not a figure from the paper — this benchmarks the serving front-end added
on top of the engine (:mod:`repro.service`).  Two comparisons live here:

* :func:`run_service_throughput` — the PR 1 experiment: one mixed
  multi-analyst workload (RRQs, GROUP BY histograms, BFS-style dyadic
  ranges) replayed across N threads in ``single`` vs ``batched``
  submission; batched planning answers at least as many queries with a
  higher cache hit rate and less budget.
* :func:`run_sharding_comparison` — the sharding experiment: a
  *disjoint-view* workload (each analyst hammers its own wide marginal
  view) replayed once through the PR 1 global-lock service
  (``execution="global"``) and once through the sharded service; total
  epsilon spent must be identical (the accounting is order-independent
  when views are disjoint) while the sharded run's throughput wins by
  whatever the hardware allows — on a single-CPU host only the removed
  lock-convoy overhead, on multi-core hosts real parallel execution of
  the per-view sections.
* :func:`run_mp_comparison` — the execution-backend experiment
  (``bench-service --compare-threaded``): the identical workload replayed
  through the threaded backend and the multiprocessing shard backend
  (``backend="mp"``) under per-view noise streams; answers must be
  bitwise identical and accounting must replay exactly, while the mp
  run's q/s must hold :data:`MP_FLOOR` on single-CPU hosts (the
  multi-core speedup is asserted by a cpu_count-conditional test).
* :func:`run_remote_comparison` — the serving experiment
  (``bench-service --remote``): the disjoint-view workload replayed once
  in process and once over the wire (an in-process
  :class:`repro.server.ReproServer` on an ephemeral port, driven by
  :class:`repro.client.RemoteAnalyst` connections), plus an optional
  open-loop Poisson run; accounting must be identical across transports
  while the wire run additionally reports p50/p95 latency — the
  over-the-wire numbers recorded next to the in-process ones in
  ``BENCH_service_throughput.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile

from repro.core.analyst import Analyst
from repro.datasets import load_adult, load_tpch
from repro.dp.rng import SeedLike
from repro.exceptions import ReproError
from repro.persistence import DurabilityManager
from repro.server.daemon import ReproServer
from repro.service.loadgen import (
    MODES,
    OverloadResult,
    ThroughputResult,
    build_disjoint_workload,
    build_mixed_workload,
    disjoint_view_attribute_sets,
    format_throughput,
    register_disjoint_views,
    run_overload,
    run_remote_throughput,
    run_sequential_replay,
    run_throughput,
)
from repro.service.service import QueryService
from repro.service.sharding import DEFAULT_NUM_SHARDS

#: Privilege ladder the analysts cycle through (paper's 1..10 scale).
_PRIVILEGES = (1, 2, 4, 6, 8, 10)

#: Supported workload shapes for the service benchmarks.
WORKLOADS = ("mixed", "disjoint")

#: Speedup the sharded service targets over the global-lock baseline on
#: multi-core hosts (reported everywhere; asserted only as "no slower"
#: by default, since a single-CPU runner cannot express parallelism).
SPEEDUP_TARGET = 1.5

#: Durability axes the ``--durability`` comparison measures: no ledger at
#: all, then each fsync policy of the write-ahead budget ledger.
DURABILITY_AXES = ("none", "off", "batch", "always")

#: Minimum batched q/s the ``fsync=off`` ledger must retain relative to
#: the non-durable baseline (the acceptance floor CI gates on).
DURABILITY_OFF_FLOOR = 0.9

#: Mixed-workload q/s the serving layer reached at bench scale *before*
#: the hot-path overhaul (compiled-statement cache + memoized-answer
#: fast lane + vectorized transforms), measured on the 1-CPU reference
#: container — the committed PR 4 ``BENCH_service_throughput.json``
#: trajectory.  The overhaul's acceptance bar is >= 1.3x over these.
FASTPATH_BASELINE_QPS = {"single": 4228.0, "batched": 4242.5}

#: Speedup over :data:`FASTPATH_BASELINE_QPS` the overhaul must keep.
FASTPATH_SPEEDUP_TARGET = 1.3

#: Bar for the gate's *same-window* estimator
#: (:func:`run_fastpath_comparison`).  The measured baseline switches
#: off three of the overhaul's legs — statement cache capacity 0
#: (every probe misses, like the cacheless pre-overhaul code), fast
#: lane off, and ``thread_compiled`` off so every submit layer
#: re-probes per query exactly as the pre-overhaul dispatch did —
#: while vectorized transforms have no toggle, so the same-window
#: ratio excludes the vectorization share of the committed trajectory.
#: The dispatch-overhead PR both widened the gap and made the baseline
#: faithful: one threaded resolution per query on the overhauled axis
#: vs cacheless per-layer recompilation on the baseline axis measures
#: >= 1.3x across container windows where cache+lane alone used to
#: measure ~1.2-1.5x.  A structural hot-path
#: regression drags this toward 1.0x together with the committed
#: estimator.
FASTPATH_SAME_WINDOW_TARGET = 1.3

#: Minimum mp-backend q/s relative to the threaded backend on the same
#: workload (the ``--compare-threaded`` floor).  On a single-CPU host
#: the mp backend pays pipe + shared-memory bookkeeping with no cores
#: to win back, so this gate bounds the IPC overhead rather than
#: asserting a speedup; the multi-core speedup is asserted by the
#: cpu_count-conditional scaling test.
#:
#: Minimum q/s the tracing-enabled service must retain relative to the
#: same workload replayed with ``Tracer(enabled=False)`` (the
#: ``--trace-overhead`` gate).  A disabled tracer degrades every span
#: to one ContextVar read and an enabled one to a few dict writes per
#: query, so the true overhead is percent-level; 0.95 is the tripwire
#: for someone accidentally putting allocation or locking on the
#: untraced hot path.
TRACE_OVERHEAD_FLOOR = 0.95

#: ``--audit-overhead`` q/s floor: the audit tailer may cost at most 5%
#: on the fresh (charging) path.  The fast lane is gated structurally —
#: zero audit charge events on a warm replay — not by a stopwatch.
AUDIT_OVERHEAD_FLOOR = 0.95

#: The value is the *measured* single-CPU floor, not an aspiration.
#: On the 1-core reference container the boundary cost — request
#: forwarding, brokered charges, the end-of-batch fold of synopses,
#: counters, and audit log — is ~30us per query against ~180us of
#: useful per-query work at the default replay scale, giving a
#: measured steady-state ratio of 0.72-0.86x (run-to-run noise on the
#: container reaches +-15%).  The boundary components are irreducible
#: without giving up an acceptance property: planning already happens
#: exactly once system-wide (the single-worker raw-forward path),
#: charges must broker through the parent (one accounting domain),
#: and answers, synopses, and the audit log must fold back for
#: bit-identical accounting.  0.55 is the regression tripwire below
#: the observed band — hitting it means structural overhead was
#: added, not that the container was slow that day.
MP_FLOOR = 0.55

#: The exact configuration :data:`FASTPATH_BASELINE_QPS` was measured
#: under.  :func:`fastpath_comparable` is the single source of truth for
#: "may this run be compared/gated against the baseline" — the bench
#: script and the CLI both call it rather than re-implementing the
#: check, so the two can never drift.
FASTPATH_BASELINE_CONFIG = dict(dataset="adult", rows=12000, analysts=8,
                                min_queries=100, threads=8,
                                shards=DEFAULT_NUM_SHARDS, batch_size=32,
                                epsilon=12.0, seed=0,
                                workload="mixed", execution="sharded")


def fastpath_comparable(*, dataset: str, rows: int | None, analysts: int,
                        queries: int, threads: int, shards: int,
                        workload: str, execution: str, fast_lane: bool,
                        batch_size: int = 32, epsilon: float = 12.0,
                        seed=0, backend: str = "threaded") -> bool:
    """Whether a run's configuration matches the fast-path baseline's.

    ``queries`` only needs to reach the baseline's floor (longer runs
    measure the same steady state); everything else — including the
    budget, batch size, and workload seed, which shape the query mix
    and the rejection pattern — must match exactly.  Repeat counts are
    irrelevant: they only affect best-of sampling.
    """
    cfg = FASTPATH_BASELINE_CONFIG
    return (fast_lane
            and backend == "threaded"
            and dataset == cfg["dataset"]
            and rows == cfg["rows"]
            and analysts == cfg["analysts"]
            and queries >= cfg["min_queries"]
            and threads == cfg["threads"]
            and shards == cfg["shards"]
            and batch_size == cfg["batch_size"]
            and epsilon == cfg["epsilon"]
            and seed == cfg["seed"]
            and workload == cfg["workload"]
            and execution == cfg["execution"])


def make_service_analysts(num_analysts: int) -> list[Analyst]:
    """``num_analysts`` analysts over the default privilege ladder."""
    return [Analyst(f"analyst_{i:02d}", _PRIVILEGES[i % len(_PRIVILEGES)])
            for i in range(num_analysts)]


def _load_bundle(dataset: str, num_rows: int | None, seed: SeedLike):
    loader = load_adult if dataset == "adult" else load_tpch
    kwargs = ({"num_rows": num_rows} if dataset == "adult"
              else {"lineitem_rows": num_rows})
    if num_rows is None:
        kwargs = {}
    return loader(seed=seed, **kwargs)


def _build_workload(bundle, analysts, queries_per_analyst, accuracy,
                    workload, view_width, seed):
    if workload == "mixed":
        return None, build_mixed_workload(bundle, analysts,
                                          queries_per_analyst,
                                          accuracy=accuracy, seed=seed)
    if workload == "disjoint":
        attribute_sets = disjoint_view_attribute_sets(
            bundle, len(analysts), width=view_width)
        return attribute_sets, build_disjoint_workload(
            bundle, analysts, queries_per_analyst, attribute_sets,
            accuracy=accuracy, seed=seed)
    raise ReproError(f"unknown workload {workload!r}; "
                     f"choose from {WORKLOADS}")


def _build_service(bundle, analysts, epsilon, mechanism,
                   max_cached_synopses, execution, shards, seed,
                   attribute_sets, backend="threaded",
                   workers=None, **build_kwargs) -> QueryService:
    service = QueryService.build(
        bundle, analysts, epsilon, mechanism=mechanism,
        max_cached_synopses=max_cached_synopses,
        execution=execution, shards=shards, seed=seed,
        backend=backend, workers=workers, **build_kwargs,
    )
    if attribute_sets:
        register_disjoint_views(service.engine, attribute_sets)
    return service


def run_service_throughput(dataset: str = "adult",
                           num_rows: int | None = 12000,
                           num_analysts: int = 8,
                           queries_per_analyst: int = 150,
                           threads: int = 8,
                           batch_size: int = 32,
                           epsilon: float = 12.0,
                           accuracy: float = 40000.0,
                           mechanism: str = "additive",
                           max_cached_synopses: int = 256,
                           repeats: int = 1,
                           seed: SeedLike = 0,
                           execution: str = "sharded",
                           shards: int = DEFAULT_NUM_SHARDS,
                           workload: str = "mixed",
                           view_width: int = 2,
                           fast_lane: bool = True,
                           backend: str = "threaded",
                           workers: int | None = None
                           ) -> list[ThroughputResult]:
    """One run per (mode, repeat); fresh service per run, same workload."""
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, workload,
        view_width, seed)
    results: list[ThroughputResult] = []
    for mode in MODES:
        for _ in range(max(1, repeats)):
            # The mp backend requires per-view noise streams (its
            # determinism contract); the threaded default is untouched.
            extra = ({"noise_streams": "per_view"} if backend == "mp"
                     else {})
            service = _build_service(bundle, analysts, epsilon, mechanism,
                                     max_cached_synopses, execution, shards,
                                     seed, attribute_sets,
                                     backend=backend, workers=workers,
                                     **extra)
            service.engine.fast_lane = fast_lane
            try:
                results.append(run_throughput(service, analysts, streams,
                                              mode=mode, threads=threads,
                                              batch_size=batch_size))
            finally:
                service.close()
    return results


def run_profile(dataset: str = "adult",
                num_rows: int | None = 12000,
                num_analysts: int = 8,
                queries_per_analyst: int = 100,
                batch_size: int = 32,
                epsilon: float = 12.0,
                accuracy: float = 40000.0,
                mechanism: str = "additive",
                max_cached_synopses: int = 256,
                seed: SeedLike = 0,
                shards: int = DEFAULT_NUM_SHARDS,
                execution: str = "sharded",
                workload: str = "mixed",
                view_width: int = 2,
                fast_lane: bool = True,
                top: int = 20) -> dict:
    """cProfile one inline serving replay; returns the hotspot table.

    The replay runs on the *calling* thread (``cProfile`` observes only
    its own thread — a threaded run would profile nothing but lock
    waits), replaying every analyst's stream once query-by-query and
    once batched through the planner, on one warm service.  The hotspot
    ranking is therefore the serving path's real per-query work, minus
    scheduler noise — the table future perf PRs should be driven by.

    Returns a JSON-native dict: run metadata plus the ``top`` functions
    by cumulative time (``ncalls``/``tottime``/``cumtime`` per row), the
    block ``bench-service --profile`` embeds under ``summary.profile``
    in ``BENCH_service_throughput.json``.
    """
    import cProfile
    import pstats
    import time

    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, workload,
        view_width, seed)
    service = _build_service(bundle, analysts, epsilon, mechanism,
                             max_cached_synopses, execution, shards,
                             seed, attribute_sets)
    # Profile the same configuration the main run measures — hunting
    # slow-path hotspots with the fast lane secretly on (or on a
    # different execution mode) would misdirect the very perf work this
    # table exists to support.
    service.engine.fast_lane = fast_lane
    try:
        sessions = {a.name: service.open_session(a.name) for a in analysts}
        profiler = cProfile.Profile()
        started = time.perf_counter()
        profiler.enable()
        for analyst in analysts:
            session = sessions[analyst.name]
            for request in streams[analyst.name]:
                service.submit(session, request.sql,
                               accuracy=request.accuracy,
                               epsilon=request.epsilon)
        for analyst in analysts:
            session = sessions[analyst.name]
            stream = streams[analyst.name]
            for start in range(0, len(stream), batch_size):
                service.submit_batch(session, stream[start:start + batch_size])
        profiler.disable()
        seconds = time.perf_counter() - started
    finally:
        service.close()

    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "function": f"{filename}:{lineno}({name})",
            "ncalls": int(nc),
            "primitive_calls": int(cc),
            "tottime": float(tt),
            "cumtime": float(ct),
        })
    by_cumtime = sorted(rows, key=lambda r: r["cumtime"], reverse=True)
    # Two rankings, two questions: cumtime finds the expensive *call
    # trees* (where to restructure), tottime finds the functions whose
    # own bodies burn the time (where to optimise in place) — the
    # dispatch-overhead work was driven off the tottime table, where
    # per-query parse/compile/probe overhead shows up directly instead
    # of being attributed to whichever caller happened to sit above it.
    by_tottime = sorted(rows, key=lambda r: r["tottime"], reverse=True)
    queries = 2 * sum(len(s) for s in streams.values())
    return {
        "mode": "inline single+batched (1 thread, profiled, fast lane "
                + ("on)" if fast_lane else "off)"),
        "queries": int(queries),
        "seconds": float(seconds),
        "queries_per_second": float(queries / seconds) if seconds else 0.0,
        "top_n": int(top),
        "top": by_cumtime[:top],
        "top_by_tottime": by_tottime[:top],
    }


def format_profile(profile: dict) -> str:
    """Text tables for :func:`run_profile`: top-N by cumulative time,
    then (when recorded) top-N by own-body time."""
    header = (f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  function")
    lines = [
        f"== profile: {profile['mode']} ==",
        f"{profile['queries']} queries in {profile['seconds']:.2f}s "
        f"({profile['queries_per_second']:.0f} q/s under the profiler)",
        header,
        "-" * 72,
    ]
    for row in profile["top"]:
        lines.append(f"{row['ncalls']:>10d} {row['tottime']:>9.4f} "
                     f"{row['cumtime']:>9.4f}  {row['function']}")
    by_tottime = profile.get("top_by_tottime")
    if by_tottime:
        lines.append("-- by tottime (own body, excl. callees) --")
        for row in by_tottime:
            lines.append(f"{row['ncalls']:>10d} {row['tottime']:>9.4f} "
                         f"{row['cumtime']:>9.4f}  {row['function']}")
    return "\n".join(lines)


def fastpath_speedup(results: list[ThroughputResult],
                     baseline: dict | None = None) -> dict[str, float]:
    """Best q/s per mode over the pre-overhaul committed baseline."""
    baseline = baseline if baseline is not None else FASTPATH_BASELINE_QPS
    speedup: dict[str, float] = {}
    for mode, base in baseline.items():
        qps = [r.queries_per_second for r in results
               if r.mode == mode and r.transport == "inproc"]
        if qps and base > 0:
            speedup[mode] = max(qps) / base
    return speedup


def check_fastpath_speedup(results: list[ThroughputResult],
                           factor: float = FASTPATH_SPEEDUP_TARGET,
                           same_window: dict | None = None) -> None:
    """Assert the hot-path overhaul's q/s bar: >= ``factor`` x the
    pre-overhaul baseline, on both submission modes.

    Two understating estimators per mode, each against its own bar
    (the ``--trace-overhead`` gate's max-of-estimators design): the
    ratio against the *committed absolute* baseline (bar ``factor``) —
    which understates whenever the container runs slower than the
    reference window it was recorded in — and the *same-window
    measured* ratio from :func:`run_fastpath_comparison` (bar scaled
    by :data:`FASTPATH_SAME_WINDOW_TARGET`) — which understates
    because the measured baseline keeps the overhaul's untoggleable
    vectorized transforms.  Container noise depresses one estimator or
    the other; a genuine structural regression depresses both.
    """
    speedup = fastpath_speedup(results)
    assert set(speedup) == set(FASTPATH_BASELINE_QPS), \
        f"fast-path gate needs both modes, got {sorted(speedup)}"
    same_window = same_window or {}
    # The same-window bar scales with a caller-overridden factor so
    # `--require-fastpath-speedup 1.5` tightens both estimators.
    window_bar = factor * FASTPATH_SAME_WINDOW_TARGET \
        / FASTPATH_SPEEDUP_TARGET
    for mode, committed in speedup.items():
        measured = same_window.get(mode) or 0.0
        if committed >= factor or measured >= window_bar:
            continue
        detail = (f" and only {measured:.2f}x the same-window measured "
                  f"baseline (bar {window_bar:.2f}x)" if measured else "")
        raise AssertionError(
            f"{mode} q/s is only {committed:.2f}x the committed "
            f"pre-overhaul baseline ({FASTPATH_BASELINE_QPS[mode]:.0f} "
            f"q/s, requires >= {factor:.1f}x){detail}; the hot-path "
            f"overhaul must clear one estimator")


def run_fastpath_comparison(dataset: str = "adult",
                            num_rows: int | None = 12000,
                            num_analysts: int = 8,
                            queries_per_analyst: int = 100,
                            threads: int = 8,
                            batch_size: int = 32,
                            epsilon: float = 12.0,
                            accuracy: float = 40000.0,
                            seed: SeedLike = 0,
                            shards: int = DEFAULT_NUM_SHARDS,
                            repeats: int = 3) -> dict:
    """Same-window fast-path ratio: the overhaul's toggles on vs off.

    The committed :data:`FASTPATH_BASELINE_QPS` constants only mean
    something at the reference container's speed; on a noisy host an
    absolute gate cannot tell "the code got slower" from "the machine
    got slower today" (the ``MP_FLOOR`` comment's standard: a tripped
    gate must mean structural overhead, not a slow container day).
    This re-measures the pre-overhaul *configuration* — statement
    cache disabled outright (capacity 0: every probe misses, exactly
    the cacheless PR 4 code), the memoized-answer fast lane off, and
    the one-resolution-per-query dispatch off (``thread_compiled``:
    the serving layers forget each resolution so every submit layer
    re-probes, as the pre-overhaul dispatch did) — interleaved
    run-for-run with the overhauled configuration in the same process,
    and reports best-of ratios per mode.  Vectorized transforms, the
    overhaul's third leg, have no toggle, so the measured baseline
    runs slightly faster than true pre-overhaul code and the ratio
    *understates* the overhaul — conservative for a floor gate.
    """
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, "mixed", 2, seed)
    best: dict[str, dict[str, float]] = {"baseline": {}, "fastpath": {}}

    def one(mode: str, axis: str) -> None:
        extra = ({} if axis == "fastpath"
                 else {"statement_cache_size": 0})
        service = _build_service(bundle, analysts, epsilon, "additive",
                                 256, "sharded", shards, seed,
                                 attribute_sets, **extra)
        if axis == "baseline":
            service.engine.fast_lane = False
            service.engine.thread_compiled = False
        try:
            result = run_throughput(service, analysts, streams, mode=mode,
                                    threads=threads,
                                    batch_size=batch_size)
        finally:
            service.close()
        bucket = best[axis]
        bucket[mode] = max(bucket.get(mode, 0.0),
                           result.queries_per_second)

    for mode in MODES:
        for _ in range(max(1, repeats)):
            one(mode, "baseline")
            one(mode, "fastpath")
    ratio = {mode: (best["fastpath"][mode] / best["baseline"][mode]
                    if best["baseline"].get(mode) else None)
             for mode in MODES}
    return {"baseline_qps": best["baseline"],
            "fastpath_qps": best["fastpath"],
            "ratio": ratio}


def format_fastpath_comparison(comparison: dict) -> str:
    """One line per mode: measured baseline vs fast path, same window."""
    parts = []
    for mode, ratio in sorted(comparison["ratio"].items()):
        base = comparison["baseline_qps"].get(mode, 0.0)
        fast = comparison["fastpath_qps"].get(mode, 0.0)
        shown = f"{ratio:.2f}x" if ratio else "n/a"
        parts.append(f"{mode} {fast:.0f} vs {base:.0f} q/s = {shown}")
    return "fast path same-window (cache+lane+dispatch off vs on): " \
        + ", ".join(parts)


def run_mp_comparison(dataset: str = "adult",
                      num_rows: int | None = 12000,
                      num_analysts: int = 8,
                      queries_per_analyst: int = 60,
                      batch_size: int = 32,
                      epsilon: float = 12.0,
                      accuracy: float = 40000.0,
                      seed: int = 0,
                      shards: int = DEFAULT_NUM_SHARDS,
                      workers: int | None = None,
                      workload: str = "mixed",
                      view_width: int = 2
                      ) -> tuple[list[ThroughputResult], dict]:
    """The ``--compare-threaded`` replay: mp vs threaded, bit for bit.

    The identical workload is replayed batched on one caller thread
    (parallelism lives inside each ``submit_batch``) through a fresh
    threaded service and a fresh mp service, both built with
    ``noise_streams="per_view"``, the same integer seed, and an
    unbounded synopsis store — the configuration under which a view's
    noise draws are a function of its own release order alone, so the
    two backends must produce bitwise-identical answers, identical
    per-analyst epsilon, identical fresh-release work, and provenance
    totals equal to float arrival-order noise (1e-9).

    Returns the two :class:`ThroughputResult` rows and the replay-check
    dict :func:`check_mp_matches_threaded` gates on.
    """
    seed = int(seed)  # per-view noise streams key off an integer seed
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, workload,
        view_width, seed)
    results: list[ThroughputResult] = []
    traces: dict[str, list] = {}
    eps_by_analyst: dict[str, dict] = {}
    table_total: dict[str, float] = {}
    backend_info: dict[str, dict] = {}
    for backend in ("threaded", "mp"):
        service = _build_service(
            bundle, analysts, epsilon, "additive",
            None,  # unbounded store: LRU eviction order diverges per-shard
            "sharded", shards, seed, attribute_sets,
            backend=backend,
            workers=(workers if backend == "mp" else None),
            noise_streams="per_view")
        try:
            # Pre-fork outside the timed window, as `repro serve` does —
            # the comparison measures steady-state serving, not worker
            # pool construction.  The ping round-trips every worker's
            # event loop once so page fault-in of the forked state
            # doesn't land in the first timed batch.
            service.start_backend()
            if service.mp_backend is not None:
                service.mp_backend.ping()
            result, trace = run_sequential_replay(
                service, analysts, streams, batch_size=batch_size)
            results.append(result)
            traces[backend] = trace
            snapshot = service.snapshot()
            eps_by_analyst[backend] = \
                service.stats.as_dict()["epsilon_by_analyst"]
            table_total[backend] = snapshot["provenance"]["table_total"]
            backend_info[backend] = snapshot["backend"]
        finally:
            service.close()
    provenance_delta = abs(table_total["threaded"] - table_total["mp"])
    replay = {
        "answers_bitwise_identical": traces["threaded"] == traces["mp"],
        "epsilon_by_analyst_identical":
            eps_by_analyst["threaded"] == eps_by_analyst["mp"],
        "fresh_releases": {r.backend: r.fresh_releases for r in results},
        "provenance_table_total_delta": provenance_delta,
        "workers": backend_info["mp"].get("workers"),
        "mp_backend": backend_info["mp"],
    }
    replay["match"] = (replay["answers_bitwise_identical"]
                       and replay["epsilon_by_analyst_identical"]
                       and len(set(replay["fresh_releases"].values())) == 1
                       and provenance_delta <= 1e-9)
    return results, replay


def run_trace_overhead(dataset: str = "adult",
                       num_rows: int | None = 12000,
                       num_analysts: int = 8,
                       queries_per_analyst: int = 240,
                       batch_size: int = 32,
                       epsilon: float = 12.0,
                       accuracy: float = 40000.0,
                       seed: int = 0,
                       shards: int = DEFAULT_NUM_SHARDS,
                       workload: str = "mixed",
                       view_width: int = 2,
                       repeats: int = 10) -> dict:
    """The ``--trace-overhead`` axis: tracing on vs off, same workload.

    Two identically-seeded services are built — one with the default
    enabled :class:`~repro.metrics.tracing.Tracer`, one with a disabled
    tracer (every ``span()`` degrades to a single ContextVar read).
    The first replay through each must produce **bitwise identical**
    response traces, pinning the design rule that tracing observes the
    request path and never steers it.

    The gated ratio is then measured on the *warm* services: after a
    discarded warm-up slice per axis, the same workload is replayed
    ``repeats`` more times alternating off/on.  Two estimators of the
    same quantity are computed — the **median of adjacent-slice on/off
    ratios** and the **ratio of per-axis best slices** — and the gate
    takes their max.  On a shared single-CPU container, cgroup-quota
    throttling stalls a run in ~100ms bursts that dwarf the effect
    under measurement; the noise is strictly one-sided (a burst only
    ever slows a slice down), so each estimator can only *understate*
    the true ratio, and taking the max simply rejects whichever one a
    burst happened to depress.  Alternating adjacent slices keeps the
    paired estimator from confounding the axis with drift.  Warm
    replays serve from the memoized hot path — exactly the per-answer
    path the floor is meant to protect; the engine's fresh-release
    cost is three orders of magnitude above a span and needs no gate.
    """
    from repro.metrics.tracing import Tracer

    seed = int(seed)
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, workload,
        view_width, seed)

    def build(axis: str) -> QueryService:
        return _build_service(
            bundle, analysts, epsilon, "additive", 256, "sharded",
            shards, seed, attribute_sets,
            tracer=Tracer(enabled=(axis == "on")))

    services = {"off": build("off"), "on": build("on")}
    try:
        def replay(axis: str) -> tuple[float, list]:
            result, trace = run_sequential_replay(
                services[axis], analysts, streams, batch_size=batch_size)
            return result.queries_per_second, trace

        answer_traces = {}
        for axis in ("off", "on"):
            _, answer_traces[axis] = replay(axis)   # cold: fresh releases
            replay(axis)                            # warm-up slice
        qps = {"off": 0.0, "on": 0.0}
        slice_ratios: list[float] = []
        for _ in range(max(1, repeats)):
            pair: dict[str, float] = {}
            for axis in ("off", "on"):
                pair[axis], _ = replay(axis)
                qps[axis] = max(qps[axis], pair[axis])
            if pair["off"] > 0:
                slice_ratios.append(pair["on"] / pair["off"])
        traces_started = services["on"].tracer.counters()["started"]
    finally:
        for service in services.values():
            service.close()
    median_paired = statistics.median(slice_ratios) if slice_ratios else None
    best_of = qps["on"] / qps["off"] if qps["off"] > 0 else None
    candidates = [r for r in (median_paired, best_of) if r is not None]
    return {
        "queries_per_second": qps,
        "ratio": max(candidates) if candidates else None,
        "median_paired_ratio": median_paired,
        "best_of_ratio": best_of,
        "slice_ratios": slice_ratios,
        "floor": TRACE_OVERHEAD_FLOOR,
        "answers_bitwise_identical":
            answer_traces["on"] == answer_traces["off"],
        "traces_started": traces_started,
    }


def check_trace_overhead(overhead: dict,
                         floor: float = TRACE_OVERHEAD_FLOOR) -> None:
    """Assert the tracing acceptance bar: bit-identical answers with
    tracing on or off, and q/s no worse than ``floor`` times untraced."""
    assert overhead["answers_bitwise_identical"], \
        "tracing changed the replayed answers (it must only observe)"
    assert overhead["traces_started"] > 0, \
        "the tracing-enabled run recorded no traces"
    ratio = overhead["ratio"]
    assert ratio is not None and ratio >= floor, \
        (f"tracing-enabled run reached only {ratio:.3f}x of the "
         f"tracing-off q/s (floor {floor:.2f}x)")


def format_trace_overhead(overhead: dict) -> str:
    """The ``--trace-overhead`` report block."""
    qps = overhead["queries_per_second"]
    ratio = overhead["ratio"]
    return (f"tracing overhead: on={qps['on']:.0f} q/s "
            f"off={qps['off']:.0f} q/s "
            f"ratio={ratio:.3f}x (floor {overhead['floor']:.2f}x; "
            f"median-paired {overhead['median_paired_ratio']:.3f}, "
            f"best-of {overhead['best_of_ratio']:.3f}); "
            f"answers {'bitwise identical' if overhead['answers_bitwise_identical'] else 'DIVERGED'}; "
            f"{overhead['traces_started']} traces recorded")


def run_audit_overhead(dataset: str = "adult",
                       num_rows: int | None = 12000,
                       num_analysts: int = 8,
                       queries_per_analyst: int = 240,
                       batch_size: int = 32,
                       epsilon: float = 12.0,
                       accuracy: float = 40000.0,
                       seed: int = 0,
                       shards: int = DEFAULT_NUM_SHARDS,
                       workload: str = "mixed",
                       view_width: int = 2,
                       repeats: int = 5) -> dict:
    """The ``--audit-overhead`` axis: audit tailer on vs off.

    The tailer only runs where a charge commits, so the cost under test
    lives on the *fresh* path — every timed slice is a cold replay
    through a freshly built, identically seeded service, alternating
    off/on so the paired estimator doesn't confound the axis with
    host drift.  Answers must be bitwise identical across the axes:
    the tailer observes committed charges, it never steers them.  The
    same two one-sided estimators as the tracing gate are used (median
    of adjacent-slice ratios, ratio of per-axis best slices; cgroup
    throttling bursts only ever *depress* a slice, so max() of the two
    rejects whichever a burst hit).

    The fast lane is gated structurally rather than by a stopwatch: a
    warm replay of the same workload serves every answer from the
    memoized hot path, never charges, and therefore must leave the
    audit trail's charge-event count untouched — the tailer's warm-path
    cost is exactly the work it is never asked to do.
    """
    seed = int(seed)
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, workload,
        view_width, seed)

    def build(axis: str) -> QueryService:
        return _build_service(
            bundle, analysts, epsilon, "additive", 256, "sharded",
            shards, seed, attribute_sets, audit=(axis == "on"))

    qps = {"off": 0.0, "on": 0.0}
    warm_qps = {"off": 0.0, "on": 0.0}
    slice_ratios: list[float] = []
    answer_traces: dict[str, list] = {}
    charges_recorded = 0
    fast_lane_events: int | None = None
    for slice_no in range(max(1, repeats)):
        pair: dict[str, float] = {}
        for axis in ("off", "on"):
            service = build(axis)
            try:
                result, trace = run_sequential_replay(
                    service, analysts, streams, batch_size=batch_size)
                pair[axis] = result.queries_per_second
                qps[axis] = max(qps[axis], pair[axis])
                if slice_no == 0:
                    answer_traces[axis] = trace
                    before = (service.audit.describe()["charges"]
                              if service.audit is not None else 0)
                    warm, _ = run_sequential_replay(
                        service, analysts, streams,
                        batch_size=batch_size)
                    warm_qps[axis] = warm.queries_per_second
                    after = (service.audit.describe()["charges"]
                             if service.audit is not None else 0)
                    if axis == "on":
                        fast_lane_events = after - before
                if axis == "on" and service.audit is not None:
                    charges_recorded = max(
                        charges_recorded,
                        service.audit.describe()["charges"])
            finally:
                service.close()
        if pair["off"] > 0:
            slice_ratios.append(pair["on"] / pair["off"])
    median_paired = statistics.median(slice_ratios) if slice_ratios \
        else None
    best_of = qps["on"] / qps["off"] if qps["off"] > 0 else None
    candidates = [r for r in (median_paired, best_of) if r is not None]
    return {
        "queries_per_second": qps,
        "warm_queries_per_second": warm_qps,
        "ratio": max(candidates) if candidates else None,
        "median_paired_ratio": median_paired,
        "best_of_ratio": best_of,
        "slice_ratios": slice_ratios,
        "floor": AUDIT_OVERHEAD_FLOOR,
        "answers_bitwise_identical":
            answer_traces["on"] == answer_traces["off"],
        "charges_recorded": charges_recorded,
        "fast_lane_audit_events": fast_lane_events,
    }


def check_audit_overhead(overhead: dict,
                         floor: float = AUDIT_OVERHEAD_FLOOR) -> None:
    """Assert the audit acceptance bar: bit-identical answers with the
    tailer on or off, zero tailer events on the fast lane, and fresh-path
    q/s no worse than ``floor`` times the audit-off replay."""
    assert overhead["answers_bitwise_identical"], \
        "the audit tailer changed the replayed answers (it must only " \
        "observe committed charges)"
    assert overhead["charges_recorded"] > 0, \
        "the audit-enabled run recorded no charge events"
    assert overhead["fast_lane_audit_events"] == 0, \
        (f"a warm (fast-lane) replay added "
         f"{overhead['fast_lane_audit_events']} audit charge events; "
         f"memoized answers must never reach the tailer")
    ratio = overhead["ratio"]
    assert ratio is not None and ratio >= floor, \
        (f"audit-enabled run reached only {ratio:.3f}x of the "
         f"audit-off fresh-path q/s (floor {floor:.2f}x)")


def format_audit_overhead(overhead: dict) -> str:
    """The ``--audit-overhead`` report block."""
    qps = overhead["queries_per_second"]
    warm = overhead["warm_queries_per_second"]
    return (f"audit overhead (fresh path): on={qps['on']:.0f} q/s "
            f"off={qps['off']:.0f} q/s "
            f"ratio={overhead['ratio']:.3f}x (floor "
            f"{overhead['floor']:.2f}x; "
            f"median-paired {overhead['median_paired_ratio']:.3f}, "
            f"best-of {overhead['best_of_ratio']:.3f}); "
            f"answers {'bitwise identical' if overhead['answers_bitwise_identical'] else 'DIVERGED'}; "
            f"{overhead['charges_recorded']} charges audited; "
            f"fast lane: on={warm['on']:.0f} q/s off={warm['off']:.0f} "
            f"q/s with {overhead['fast_lane_audit_events']} audit "
            f"events (structurally zero)")


def mp_speedup(results: list[ThroughputResult]) -> float | None:
    """Best mp q/s over best threaded q/s (``None`` if either absent)."""
    mp = [r.queries_per_second for r in results if r.backend == "mp"]
    threaded = [r.queries_per_second for r in results
                if r.backend == "threaded"]
    if not mp or not threaded or max(threaded) <= 0:
        return None
    return max(mp) / max(threaded)


def check_mp_matches_threaded(results: list[ThroughputResult],
                              replay: dict, floor: float = MP_FLOOR,
                              strict_qps: bool = True) -> None:
    """Assert the mp backend's acceptance bar: bit-identical accounting
    against the threaded replay, and (``strict_qps``) q/s no worse than
    ``floor`` times the threaded backend on the same workload."""
    assert replay["answers_bitwise_identical"], \
        "mp backend answers diverged bitwise from the threaded replay"
    assert replay["epsilon_by_analyst_identical"], \
        "mp backend per-analyst epsilon diverged from the threaded replay"
    assert len(set(replay["fresh_releases"].values())) == 1, \
        f"fresh releases diverged across backends: " \
        f"{replay['fresh_releases']}"
    assert replay["provenance_table_total_delta"] <= 1e-9, \
        (f"provenance totals diverged beyond float arrival-order noise: "
         f"delta {replay['provenance_table_total_delta']}")
    for r in results:
        assert r.failed == 0, \
            f"backend={r.backend} run had {r.failed} failures"
    # Coalesced settlement: the parent still performs every charge, but
    # the charges ride the batch conversation (snapshot down, ordered
    # op replay up) instead of one pipe round-trip each — so a charging
    # replay must show strictly fewer standalone charge messages than
    # brokered charges (zero, by construction), with no replay ever
    # diverging from the authoritative ledger.
    backend_block = replay.get("mp_backend") or {}
    brokered = int(backend_block.get("brokered_charges", 0))
    messages = int(backend_block.get("charge_messages", 0))
    assert brokered > 0, \
        "mp replay brokered no charges — the comparison workload " \
        "never exercised the settlement path"
    assert messages < brokered, \
        (f"mp backend sent {messages} standalone charge messages for "
         f"{brokered} brokered charges; settlement must be coalesced "
         f"into the batch conversation (fewer than one message per "
         f"charge)")
    assert int(backend_block.get("charge_mismatches", 0)) == 0, \
        (f"{backend_block.get('charge_mismatches')} worker op replays "
         f"diverged from the authoritative ledger on a sequential "
         f"replay (must be impossible without cross-shard same-analyst "
         f"concurrency)")
    if strict_qps:
        ratio = mp_speedup(results)
        assert ratio is not None and ratio >= floor, \
            (f"mp backend reached only {ratio:.2f}x of threaded q/s "
             f"(floor {floor:.2f}x)")


def format_mp_comparison(results: list[ThroughputResult],
                         replay: dict) -> str:
    """The ``--compare-threaded`` report block."""
    report = format_throughput(
        results, title="execution backends: threaded vs multiprocessing")
    ratio = mp_speedup(results)
    if ratio is not None:
        report += (f"\nmp/threaded throughput: {ratio:.2f}x "
                   f"(floor {MP_FLOOR:.2f}x on single-CPU hosts; "
                   f"workers={replay.get('workers')})")
    verdict = "identical" if replay["match"] else "DIVERGED"
    report += (f"\naccounting vs threaded replay: {verdict} "
               f"(answers bitwise, per-analyst epsilon, fresh releases; "
               f"table-total delta "
               f"{replay['provenance_table_total_delta']:.2e})")
    return report


def run_sharding_comparison(dataset: str = "adult",
                            num_rows: int | None = 12000,
                            num_analysts: int = 8,
                            queries_per_analyst: int = 60,
                            threads: int = 8,
                            batch_size: int = 16,
                            epsilon: float = 64.0,
                            accuracy: float = 2e5,
                            mechanism: str = "additive",
                            max_cached_synopses: int = 256,
                            repeats: int = 3,
                            seed: SeedLike = 0,
                            shards: int = DEFAULT_NUM_SHARDS,
                            mode: str = "single",
                            view_width: int = 2) -> list[ThroughputResult]:
    """Sharded vs global-lock execution on the disjoint-view workload.

    Identical workload, fresh service per run, ``repeats`` runs per
    execution mode (take best-of for wall-clock claims; the accounting
    columns are deterministic).
    """
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, "disjoint",
        view_width, seed)
    results: list[ThroughputResult] = []
    for execution in ("global", "sharded"):
        for _ in range(max(1, repeats)):
            service = _build_service(bundle, analysts, epsilon, mechanism,
                                     max_cached_synopses, execution, shards,
                                     seed, attribute_sets)
            try:
                results.append(run_throughput(service, analysts, streams,
                                              mode=mode, threads=threads,
                                              batch_size=batch_size))
            finally:
                service.close()
    return results


def run_remote_comparison(dataset: str = "adult",
                          num_rows: int | None = 12000,
                          num_analysts: int = 4,
                          queries_per_analyst: int = 60,
                          connections: int = 4,
                          batch_size: int = 16,
                          epsilon: float = 64.0,
                          accuracy: float = 2e5,
                          mechanism: str = "additive",
                          max_cached_synopses: int = 256,
                          seed: SeedLike = 0,
                          execution: str = "sharded",
                          shards: int = DEFAULT_NUM_SHARDS,
                          mode: str = "batched",
                          view_width: int = 2,
                          open_loop_rate: float | None = None
                          ) -> list[ThroughputResult]:
    """In-process vs over-the-wire replay of one disjoint-view workload.

    The disjoint-view workload makes the accounting order-independent,
    so the in-process and remote runs must land on *identical* epsilon
    totals and fresh-release counts (asserted by
    :func:`check_remote_matches_inproc`) — the wire adds latency, never
    different privacy spend.  ``open_loop_rate`` adds a third run with
    Poisson arrivals at that aggregate rate (fresh service, so its
    accounting matches too); its latency percentiles include queueing
    delay, which is the realistic serving metric.
    """
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, "disjoint",
        view_width, seed)

    def fresh_service() -> QueryService:
        return _build_service(bundle, analysts, epsilon, mechanism,
                              max_cached_synopses, execution, shards,
                              seed, attribute_sets)

    results: list[ThroughputResult] = []
    service = fresh_service()
    try:
        results.append(run_throughput(service, analysts, streams,
                                      mode=mode, threads=connections,
                                      batch_size=batch_size))
    finally:
        service.close()

    arrivals: list[tuple[str, float | None]] = [("closed", None)]
    if open_loop_rate:
        arrivals.append(("open", open_loop_rate))
    for arrival, rate in arrivals:
        server = ReproServer(fresh_service(), port=0).start()
        try:
            results.append(run_remote_throughput(
                server.url, analysts, streams, mode=mode,
                connections=connections, batch_size=batch_size,
                arrival=arrival, rate_qps=rate, seed=seed))
        finally:
            server.shutdown()
    return results


#: Latency ceilings the overload scenario gates on: admitted queries'
#: p95 (measured from scheduled arrival — queueing included) must stay
#: bounded because admission control keeps the accepted rate below
#: capacity, and a 429 round trip must stay cheap (no engine work).
OVERLOAD_ADMITTED_P95_MS = 2000.0
OVERLOAD_REFUSED_P95_MS = 250.0


def run_overload_experiment(dataset: str = "adult",
                            num_rows: int | None = 12000,
                            num_analysts: int = 4,
                            queries_per_analyst: int = 60,
                            connections: int = 4,
                            epsilon: float = 64.0,
                            accuracy: float = 2e5,
                            mechanism: str = "additive",
                            max_cached_synopses: int = 256,
                            seed: SeedLike = 0,
                            execution: str = "sharded",
                            shards: int = DEFAULT_NUM_SHARDS,
                            view_width: int = 2,
                            rate_limit: float = 40.0,
                            rate_burst: float = 8.0,
                            offered_multiple: float = 6.0
                            ) -> tuple[OverloadResult, dict]:
    """The ``bench-service --overload`` scenario: open-loop arrivals at
    ``offered_multiple`` times the admitted capacity against a daemon
    running per-analyst admission control plus adaptive micro-batching.

    Returns the :class:`OverloadResult` and a replay-check dict: the
    requests that made it past admission are replayed query-by-query on
    a fresh in-process service, and the per-analyst epsilon totals must
    match the overloaded server's exactly (the disjoint-view workload
    makes the accounting order-independent, so neither the 429 storm nor
    micro-batch grouping may move the spend by one ulp).
    """
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, "disjoint",
        view_width, seed)

    def fresh_service() -> QueryService:
        return _build_service(bundle, analysts, epsilon, mechanism,
                              max_cached_synopses, execution, shards,
                              seed, attribute_sets)

    offered = offered_multiple * rate_limit * num_analysts
    server = ReproServer(fresh_service(), port=0,
                         rate_limit=rate_limit, rate_burst=rate_burst,
                         micro_batch=True).start()
    try:
        result = run_overload(server.url, analysts, streams,
                              rate_qps=offered, connections=connections,
                              seed=seed)
        observed = server.service.snapshot()["provenance"]
    finally:
        server.shutdown()

    replayed = fresh_service()
    try:
        for analyst, requests in result.admitted_workload.items():
            session = replayed.open_session(analyst)
            for request in requests:
                replayed.submit(session, request.sql,
                                accuracy=request.accuracy,
                                epsilon=request.epsilon)
            replayed.close_session(session)
        expected = replayed.snapshot()["provenance"]
    finally:
        replayed.close()

    replay = {
        "admitted": result.admitted,
        "server_epsilon_by_analyst": observed["epsilon_by_analyst"],
        "replay_epsilon_by_analyst": expected["epsilon_by_analyst"],
        "match": observed == expected,
    }
    return result, replay


def check_overload(result: OverloadResult, replay: dict,
                   admitted_p95_ms: float = OVERLOAD_ADMITTED_P95_MS,
                   refused_p95_ms: float = OVERLOAD_REFUSED_P95_MS) -> None:
    """Assert the overload acceptance bar: pressure actually hit the
    limiter, admitted latency stayed bounded, refusals were cheap, and
    the admitted work's accounting replays exactly in process."""
    assert result.rate_limited > 0, \
        "overload run never tripped admission control — raise the " \
        "offered rate or lower rate_limit"
    assert result.admitted > 0, \
        "overload run admitted nothing — the limiter is misconfigured"
    assert result.service.failed == 0, \
        f"overload run had {result.service.failed} hard failures"
    assert result.admitted_p95_ms <= admitted_p95_ms, \
        (f"admitted p95 {result.admitted_p95_ms:.1f}ms exceeds the "
         f"{admitted_p95_ms:.0f}ms overload bound — admission control "
         f"is not protecting the serving path")
    assert result.refused_p95_ms <= refused_p95_ms, \
        (f"429 p95 {result.refused_p95_ms:.1f}ms exceeds the "
         f"{refused_p95_ms:.0f}ms bound — refusals must not do engine "
         f"work")
    assert replay["match"], \
        (f"admitted accounting diverged from the in-process replay: "
         f"server {replay['server_epsilon_by_analyst']} vs replay "
         f"{replay['replay_epsilon_by_analyst']}")


def format_overload(result: OverloadResult, replay: dict) -> str:
    """The ``--overload`` report block."""
    lines = [
        "== overload: open-loop arrivals vs admission control ==",
        (f"offered {result.offered_qps:.0f} q/s for {result.seconds:.2f}s: "
         f"{result.attempted} attempts, {result.admitted} admitted, "
         f"{result.rate_limited} rate-limited "
         f"({100.0 * result.refusal_rate:.1f}%)"),
        (f"admitted latency: p50 {result.admitted_p50_ms:.2f}ms / "
         f"p95 {result.admitted_p95_ms:.2f}ms (queueing included)"),
        (f"429 round trip:  p50 {result.refused_p50_ms:.2f}ms / "
         f"p95 {result.refused_p95_ms:.2f}ms"),
        (f"admitted accounting vs in-process replay: "
         f"{'identical' if replay['match'] else 'DIVERGED'} "
         f"(epsilon {result.service.total_epsilon_spent:.3f})"),
    ]
    return "\n".join(lines)


def run_durability_comparison(dataset: str = "adult",
                              num_rows: int | None = 12000,
                              num_analysts: int = 8,
                              queries_per_analyst: int = 60,
                              threads: int = 8,
                              batch_size: int = 16,
                              epsilon: float = 64.0,
                              accuracy: float = 2e5,
                              mechanism: str = "additive",
                              max_cached_synopses: int = 256,
                              repeats: int = 2,
                              seed: SeedLike = 0,
                              execution: str = "sharded",
                              shards: int = DEFAULT_NUM_SHARDS,
                              mode: str = "batched",
                              axes: tuple[str, ...] = DURABILITY_AXES
                              ) -> list[ThroughputResult]:
    """The fsync-policy q/s tax: one workload replayed per axis.

    ``"none"`` runs without a ledger (the baseline); each fsync policy
    runs the identical workload with a fresh durable service journaling
    into a throwaway data directory.  Durability must never change
    *decisions* — accounting columns are asserted identical across axes
    by :func:`check_durability_matches_baseline` — so the only
    difference the table shows is wall clock: the price of making every
    charge durable before its answer is acknowledged.  The disjoint-view
    workload makes the accounting order-independent (as in the sharding
    and remote comparisons), so that equality is exact, not
    interleaving-lucky.
    """
    bundle = _load_bundle(dataset, num_rows, seed)
    analysts = make_service_analysts(num_analysts)
    attribute_sets, streams = _build_workload(
        bundle, analysts, queries_per_analyst, accuracy, "disjoint",
        2, seed)
    scratch = tempfile.mkdtemp(prefix="repro-durability-")
    results: list[ThroughputResult] = []
    try:
        for axis in axes:
            if axis not in DURABILITY_AXES:
                raise ReproError(f"unknown durability axis {axis!r}; "
                                 f"choose from {DURABILITY_AXES}")
            for run in range(max(1, repeats)):
                durability = None
                if axis != "none":
                    # mkdtemp, not a fixed name: a reused directory
                    # would be *recovered* into the "fresh" service,
                    # pre-spending budget and tripping the cross-axis
                    # accounting equality.
                    run_dir = tempfile.mkdtemp(prefix=f"{axis}-{run}-",
                                               dir=scratch)
                    durability = DurabilityManager(run_dir, fsync=axis)
                service = QueryService.build(
                    bundle, analysts, epsilon, mechanism=mechanism,
                    max_cached_synopses=max_cached_synopses,
                    execution=execution, shards=shards, seed=seed,
                    durability=durability)
                if attribute_sets:
                    register_disjoint_views(service.engine, attribute_sets)
                try:
                    results.append(run_throughput(
                        service, analysts, streams, mode=mode,
                        threads=threads, batch_size=batch_size))
                finally:
                    service.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return results


def best_qps_by_axis(results: list[ThroughputResult]) -> dict[str, float]:
    """Best q/s observed per durability axis."""
    best: dict[str, float] = {}
    for result in results:
        best[result.durability] = max(best.get(result.durability, 0.0),
                                      result.queries_per_second)
    return best


def durability_tax(results: list[ThroughputResult]) -> dict[str, float]:
    """Best q/s per durability axis as a fraction of the ``none`` axis."""
    best = best_qps_by_axis(results)
    baseline = best.get("none", 0.0)
    if baseline <= 0:
        return {}
    return {axis: qps / baseline for axis, qps in best.items()}


def check_durability_matches_baseline(
        results: list[ThroughputResult]) -> None:
    """Durability must tax wall clock only: identical epsilon, fresh
    releases, and zero failures on every axis of one comparison."""
    eps = {round(r.total_epsilon_spent, 9) for r in results}
    assert len(eps) == 1, \
        f"epsilon spent must be identical across durability axes, " \
        f"got {sorted(eps)}"
    fresh = {r.fresh_releases for r in results}
    assert len(fresh) == 1, \
        f"fresh releases must be identical across durability axes, " \
        f"got {sorted(fresh)}"
    for r in results:
        assert r.failed == 0, \
            f"durability={r.durability} run had {r.failed} failures"


def format_durability_comparison(results: list[ThroughputResult]) -> str:
    """The ``--durability`` report: table plus per-axis tax lines."""
    report = format_throughput(
        results, title="durability: write-ahead ledger fsync-policy tax")
    tax = durability_tax(results)
    for axis in DURABILITY_AXES:
        if axis == "none" or axis not in tax:
            continue
        report += (f"\nfsync={axis}: {tax[axis]:.2f}x of the non-durable "
                   f"baseline q/s")
    if "off" in tax:
        verdict = "ok" if tax["off"] >= DURABILITY_OFF_FLOOR else "VIOLATED"
        report += (f"\nfloor: fsync=off must keep >= "
                   f"{DURABILITY_OFF_FLOOR:.1f}x of baseline q/s "
                   f"({verdict})")
    return report


def check_remote_matches_inproc(results: list[ThroughputResult]) -> None:
    """Assert the wire changed nothing but latency: every run (any
    transport, any arrival process) spent identical epsilon and did the
    same fresh-release work, and nothing failed."""
    assert any(r.transport == "inproc" for r in results) and \
        any(r.transport == "remote" for r in results), \
        "comparison needs both transports"
    eps = {round(r.total_epsilon_spent, 9) for r in results}
    assert len(eps) == 1, \
        f"epsilon spent must be identical across transports, " \
        f"got {sorted(eps)}"
    fresh = {r.fresh_releases for r in results}
    assert len(fresh) == 1, \
        f"fresh releases must be identical across transports, " \
        f"got {sorted(fresh)}"
    for r in results:
        assert r.failed == 0, \
            f"{r.transport}/{r.arrival} run had {r.failed} failures"


def remote_overhead(results: list[ThroughputResult]) -> float | None:
    """Closed-loop remote q/s over in-process q/s (``None`` if absent)."""
    inproc = [r.queries_per_second for r in results
              if r.transport == "inproc"]
    remote = [r.queries_per_second for r in results
              if r.transport == "remote" and r.arrival == "closed"]
    if not inproc or not remote or max(inproc) <= 0:
        return None
    return max(remote) / max(inproc)


def format_remote_comparison(results: list[ThroughputResult]) -> str:
    """The ``--remote`` report: table plus the over-the-wire verdict."""
    report = format_throughput(
        results, title="serving over the wire: in-process vs remote")
    ratio = remote_overhead(results)
    if ratio is not None:
        report += (f"\nremote/in-process throughput: {ratio:.2f}x "
                   f"(the gap is HTTP + JSON transport cost)")
    open_runs = [r for r in results if r.arrival == "open"]
    for r in open_runs:
        report += (f"\nopen-loop @ {r.offered_qps:.0f} q/s offered: "
                   f"p50 {r.latency_p50_ms:.2f}ms / "
                   f"p95 {r.latency_p95_ms:.2f}ms")
    return report


def sharding_speedup(results: list[ThroughputResult]) -> float | None:
    """Best sharded q/s over best global q/s (``None`` if either absent)."""
    sharded = [r.queries_per_second for r in results
               if r.execution == "sharded"]
    global_ = [r.queries_per_second for r in results
               if r.execution == "global"]
    if not sharded or not global_ or max(global_) <= 0:
        return None
    return max(sharded) / max(global_)


def format_service_throughput(results: list[ThroughputResult]) -> str:
    """The ``bench-service`` report, plus a batched-vs-single speedup line."""
    report = format_throughput(
        results, title="service throughput: batched planning vs single")
    by_mode: dict[str, list[ThroughputResult]] = {}
    for result in results:
        by_mode.setdefault(result.mode, []).append(result)
    if len(by_mode) == 2:
        single = max(r.queries_per_second for r in by_mode["single"])
        batched = max(r.queries_per_second for r in by_mode["batched"])
        if single > 0:
            report += (f"\nbatched/single speedup: {batched / single:.2f}x "
                       f"(best of {len(by_mode['batched'])})")
    return report


def format_sharding_comparison(results: list[ThroughputResult],
                               target: float = 1.5) -> str:
    """The ``--compare-global`` report with the speedup verdict line."""
    report = format_throughput(
        results, title="disjoint-view workload: sharded vs global lock")
    speedup = sharding_speedup(results)
    if speedup is not None:
        runs = sum(1 for r in results if r.execution == "sharded")
        report += (f"\nsharded/global speedup: {speedup:.2f}x "
                   f"(best of {runs}, target {target:.1f}x on "
                   f"multi-core hosts)")
    return report


def write_json_artifact(path: str, results: list[ThroughputResult],
                        comparison: list[ThroughputResult] | None = None,
                        remote: list[ThroughputResult] | None = None,
                        durability: list[ThroughputResult] | None = None,
                        profile: dict | None = None,
                        fast_path: bool = False,
                        overload: tuple[OverloadResult, dict] | None = None,
                        mp: tuple[list[ThroughputResult], dict] | None = None,
                        trace_overhead: dict | None = None,
                        audit_overhead: dict | None = None,
                        fastpath_same_window: dict | None = None
                        ) -> None:
    """Write ``BENCH_service_throughput.json``: per-run rows + summary.

    The summary carries the headline numbers (q/s, hit rate, epsilon
    spent, fresh releases, shard count), the sharded/global speedup when
    a comparison ran, and — when the remote comparison ran — the
    over-the-wire q/s and p50/p95 latency next to the in-process
    numbers, so the repo's bench trajectory is tracked as a
    machine-readable artifact (uploaded by CI).  ``profile`` embeds a
    :func:`run_profile` hotspot table; ``fast_path=True`` (set by the
    bench at the comparable default scale) records the speedup over the
    pre-overhaul committed baseline.
    """
    rows = [r.as_dict() for r in results]
    comparison_rows = [r.as_dict() for r in (comparison or [])]
    remote_rows = [r.as_dict() for r in (remote or [])]
    durability_rows = [r.as_dict() for r in (durability or [])]
    # mp-vs-threaded rows live in their own list, never in "runs": the
    # perf-regression gate compares only threaded inproc rows against
    # the committed trajectory.
    mp_rows = [r.as_dict() for r in (mp[0] if mp else [])]
    best = max(results, key=lambda r: r.queries_per_second) \
        if results else None
    summary = {
        "queries_per_second": (best.queries_per_second if best else None),
        "answer_cache_hit_rate": (best.answer_cache_hit_rate
                                  if best else None),
        "total_epsilon_spent": (best.total_epsilon_spent if best else None),
        "fresh_releases": (best.fresh_releases if best else None),
        "shards": (best.shards if best else None),
        "cpu_count": os.cpu_count(),
        "speedup_target": SPEEDUP_TARGET,
    }
    if fast_path:
        summary["fast_path"] = {
            "pre_overhaul_baseline_qps": dict(FASTPATH_BASELINE_QPS),
            "speedup_vs_baseline": fastpath_speedup(results),
            "target": FASTPATH_SPEEDUP_TARGET,
        }
        if fastpath_same_window:
            summary["fast_path"]["same_window"] = fastpath_same_window
    if profile:
        summary["profile"] = profile
    if comparison:
        summary["sharded_vs_global_speedup"] = sharding_speedup(comparison)
    if remote:
        closed = [r for r in remote
                  if r.transport == "remote" and r.arrival == "closed"]
        wire = max(closed, key=lambda r: r.queries_per_second) \
            if closed else None
        summary["remote"] = {
            "queries_per_second": (wire.queries_per_second
                                   if wire else None),
            "latency_p50_ms": (wire.latency_p50_ms if wire else None),
            "latency_p95_ms": (wire.latency_p95_ms if wire else None),
            "vs_inproc": remote_overhead(remote),
        }
        open_runs = [r for r in remote if r.arrival == "open"]
        if open_runs:
            tail = open_runs[-1]
            summary["remote"]["open_loop"] = {
                "offered_qps": tail.offered_qps,
                "latency_p50_ms": tail.latency_p50_ms,
                "latency_p95_ms": tail.latency_p95_ms,
            }
    if overload:
        result, replay = overload
        summary["overload"] = {
            **result.as_dict(),
            "accounting_matches_inproc_replay": replay["match"],
            "admitted_p95_bound_ms": OVERLOAD_ADMITTED_P95_MS,
            "refused_p95_bound_ms": OVERLOAD_REFUSED_P95_MS,
        }
    if mp:
        mp_results, replay = mp
        best_by_backend = {}
        for r in mp_results:
            best_by_backend[r.backend] = max(
                best_by_backend.get(r.backend, 0.0), r.queries_per_second)
        summary["mp"] = {
            "queries_per_second": best_by_backend,
            "vs_threaded": mp_speedup(mp_results),
            "floor": MP_FLOOR,
            "workers": replay.get("workers"),
            "answers_bitwise_identical":
                replay["answers_bitwise_identical"],
            "epsilon_by_analyst_identical":
                replay["epsilon_by_analyst_identical"],
            "fresh_releases": replay["fresh_releases"],
            "provenance_table_total_delta":
                replay["provenance_table_total_delta"],
            "accounting_matches_threaded_replay": replay["match"],
            "backend": replay.get("mp_backend"),
        }
    if trace_overhead:
        summary["trace_overhead"] = dict(trace_overhead)
    if audit_overhead:
        summary["audit_overhead"] = dict(audit_overhead)
    if durability:
        tax = durability_tax(durability)
        best_by_axis = best_qps_by_axis(durability)
        summary["durability"] = {
            "queries_per_second": {axis: best_by_axis[axis]
                                   for axis in DURABILITY_AXES
                                   if axis in best_by_axis},
            "vs_none": {axis: ratio for axis, ratio in tax.items()
                        if axis != "none"},
            "fsync_off_floor": DURABILITY_OFF_FLOOR,
            "fsync_off_vs_none": tax.get("off"),
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"runs": rows, "comparison_runs": comparison_rows,
                   "remote_runs": remote_rows,
                   "durability_runs": durability_rows,
                   "mp_runs": mp_rows,
                   "summary": summary}, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "AUDIT_OVERHEAD_FLOOR",
    "DURABILITY_AXES",
    "DURABILITY_OFF_FLOOR",
    "FASTPATH_BASELINE_CONFIG",
    "FASTPATH_BASELINE_QPS",
    "FASTPATH_SAME_WINDOW_TARGET",
    "FASTPATH_SPEEDUP_TARGET",
    "MP_FLOOR",
    "OVERLOAD_ADMITTED_P95_MS",
    "OVERLOAD_REFUSED_P95_MS",
    "SPEEDUP_TARGET",
    "TRACE_OVERHEAD_FLOOR",
    "WORKLOADS",
    "best_qps_by_axis",
    "check_audit_overhead",
    "check_durability_matches_baseline",
    "check_fastpath_speedup",
    "check_mp_matches_threaded",
    "check_overload",
    "check_remote_matches_inproc",
    "check_trace_overhead",
    "durability_tax",
    "fastpath_comparable",
    "fastpath_speedup",
    "format_audit_overhead",
    "format_durability_comparison",
    "format_fastpath_comparison",
    "format_mp_comparison",
    "format_overload",
    "format_profile",
    "format_remote_comparison",
    "format_service_throughput",
    "format_sharding_comparison",
    "format_trace_overhead",
    "make_service_analysts",
    "mp_speedup",
    "remote_overhead",
    "run_audit_overhead",
    "run_durability_comparison",
    "run_fastpath_comparison",
    "run_mp_comparison",
    "run_overload_experiment",
    "run_profile",
    "run_remote_comparison",
    "run_service_throughput",
    "run_sharding_comparison",
    "run_trace_overhead",
    "sharding_speedup",
    "write_json_artifact",
]


