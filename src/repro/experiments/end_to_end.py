"""E1 / E9 — Figures 3 and 10: end-to-end RRQ comparison.

Utility (#queries answered) versus overall budget epsilon for the five
systems under round-robin and randomized analyst schedules, plus the nDCFG
fairness comparison, on Adult (Fig. 3) or TPC-H (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import load_adult, load_tpch
from repro.dp.rng import stable_seed
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunResult, run_workload
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_random, interleave_round_robin

PAPER_EPSILONS = (0.4, 0.8, 1.6, 3.2, 6.4)
DEFAULT_SYSTEMS = ("dprovdb", "vanilla", "sprivatesql", "chorus", "chorus_p")


def load_bundle(dataset: str, num_rows: int | None, seed: int):
    if dataset == "adult":
        return load_adult(seed=seed) if num_rows is None \
            else load_adult(num_rows=num_rows, seed=seed)
    if dataset == "tpch":
        return load_tpch(seed=seed) if num_rows is None \
            else load_tpch(lineitem_rows=num_rows, seed=seed)
    raise ValueError(f"unknown dataset {dataset!r}")


@dataclass(frozen=True)
class EndToEndCell:
    """Mean over repeats for one (system, epsilon, schedule) cell."""

    system: str
    epsilon: float
    schedule: str
    answered: float
    ndcfg: float
    consumed: float


def run_end_to_end(dataset: str = "adult",
                   epsilons: tuple[float, ...] = PAPER_EPSILONS,
                   schedules: tuple[str, ...] = ("round_robin", "random"),
                   systems: tuple[str, ...] = DEFAULT_SYSTEMS,
                   queries_per_analyst: int = 400,
                   accuracy: float = 10000.0,
                   privileges: tuple[int, ...] = (1, 4),
                   repeats: int = 4, num_rows: int | None = None,
                   seed: int = 0) -> list[EndToEndCell]:
    """Regenerate the Fig. 3 / Fig. 10 series (reduced scale by default)."""
    analysts = default_analysts(privileges)
    cells: list[EndToEndCell] = []
    for schedule in schedules:
        for epsilon in epsilons:
            for system_name in systems:
                answered, fairness, consumed = [], [], []
                for repeat in range(repeats):
                    run_seed = stable_seed(dataset, system_name, schedule,
                                           epsilon, repeat, seed)
                    bundle = load_bundle(dataset, num_rows, seed)
                    workload = generate_rrq(
                        bundle, analysts, queries_per_analyst,
                        accuracy=accuracy, seed=stable_seed("rrq", seed),
                    )
                    if schedule == "round_robin":
                        items = interleave_round_robin(workload)
                    else:
                        items = interleave_random(workload, seed=run_seed)
                    system = make_system(system_name, bundle, analysts,
                                         epsilon, seed=run_seed)
                    result: RunResult = run_workload(system, items, epsilon,
                                                     schedule)
                    answered.append(result.total_answered)
                    fairness.append(result.fairness(analysts))
                    consumed.append(result.consumed)
                cells.append(EndToEndCell(
                    system=system_name, epsilon=epsilon, schedule=schedule,
                    answered=float(np.mean(answered)),
                    ndcfg=float(np.mean(fairness)),
                    consumed=float(np.mean(consumed)),
                ))
    return cells


def format_end_to_end(cells: list[EndToEndCell], dataset: str = "adult") -> str:
    """Print the four panels of Fig. 3 / Fig. 10 as text tables."""
    parts = []
    for schedule in sorted({c.schedule for c in cells}):
        subset = [c for c in cells if c.schedule == schedule]
        systems = list(dict.fromkeys(c.system for c in subset))
        epsilons = sorted({c.epsilon for c in subset})
        utility_rows = []
        for system in systems:
            row = [system]
            for eps in epsilons:
                cell = next(c for c in subset
                            if c.system == system and c.epsilon == eps)
                row.append(cell.answered)
            utility_rows.append(row)
        parts.append(format_table(
            ["system"] + [f"eps={e}" for e in epsilons], utility_rows,
            title=f"[{dataset}] #queries answered ({schedule})",
        ))
        fairness_rows = []
        for system in systems:
            values = [c.ndcfg for c in subset if c.system == system]
            fairness_rows.append([system, float(np.mean(values))])
        parts.append(format_table(
            ["system", "nDCFG"], fairness_rows,
            title=f"[{dataset}] fairness ({schedule})",
        ))
    return "\n\n".join(parts)


__all__ = ["EndToEndCell", "PAPER_EPSILONS", "format_end_to_end",
           "load_bundle", "run_end_to_end"]
