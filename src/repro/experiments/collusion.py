"""RQ1 — worst-case collusion loss across analysts.

The paper's first research question: when all analysts collude, the additive
Gaussian approach should achieve the *lower bound* ``max_i eps_i``
(Theorems 3.2 and 5.2), while independent-noise designs pay the trivial
upper bound ``sum_i eps_i``.  This experiment feeds the same shared workload
to a growing set of analysts and reports each mechanism's realised collusion
bound alongside the two theoretical envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin


@dataclass(frozen=True)
class CollusionCell:
    mechanism: str
    num_analysts: int
    collusion_bound: float
    max_row: float
    sum_rows: float


def run_collusion(dataset: str = "adult",
                  analyst_counts: tuple[int, ...] = (2, 3, 4, 5, 6),
                  epsilon: float = 20.0, queries_per_analyst: int = 50,
                  accuracy: float = 10000.0, num_rows: int | None = None,
                  seed: int = 0) -> list[CollusionCell]:
    """Collusion bound vs #analysts for the additive and vanilla designs.

    ``epsilon`` defaults high so constraints do not bind — the point of RQ1
    is the *achieved* collusion loss for the same answered workload, which
    budget exhaustion would otherwise clamp for both mechanisms.
    """
    cells: list[CollusionCell] = []
    for count in analyst_counts:
        privileges = tuple(min(10, 1 + i) for i in range(count))
        analysts = default_analysts(privileges)
        for mechanism in ("dprovdb", "vanilla"):
            bundle = load_bundle(dataset, num_rows, seed)
            workload = generate_rrq(
                bundle, analysts, queries_per_analyst, accuracy=accuracy,
                seed=stable_seed("rrq_collusion", seed),
            )
            system = make_system(mechanism, bundle, analysts, epsilon,
                                 seed=stable_seed("collusion", mechanism,
                                                  count, seed))
            for item in interleave_round_robin(workload):
                system.try_submit(item.analyst, item.sql,
                                  accuracy=item.accuracy)
            rows = [system.analyst_consumed(a.name) for a in analysts]
            cells.append(CollusionCell(
                mechanism=mechanism, num_analysts=count,
                collusion_bound=system.collusion_bound(),
                max_row=max(rows), sum_rows=sum(rows),
            ))
    return cells


def format_collusion(cells: list[CollusionCell]) -> str:
    counts = sorted({c.num_analysts for c in cells})
    rows = []
    for mechanism in ("dprovdb", "vanilla"):
        row = [mechanism]
        for count in counts:
            cell = next(c for c in cells if c.mechanism == mechanism
                        and c.num_analysts == count)
            row.append(cell.collusion_bound)
        rows.append(row)
    # Envelope rows from the dprovdb cells (same workload either way).
    for label, getter in (("lower bound (max eps_i)", lambda c: c.max_row),
                          ("upper bound (sum eps_i)", lambda c: c.sum_rows)):
        row = [label]
        for count in counts:
            cell = next(c for c in cells if c.mechanism == "vanilla"
                        and c.num_analysts == count)
            row.append(getter(cell))
        rows.append(row)
    return format_table(
        ["mechanism"] + [f"n={c}" for c in counts], rows,
        title="worst-case collusion loss vs #analysts (RQ1)",
    )


__all__ = ["CollusionCell", "format_collusion", "run_collusion"]
