"""System factory: builds each compared system under identical conditions.

Names follow the paper's legends:

* ``dprovdb``       — additive Gaussian approach, Def. 11 constraints
  (the paper's ``DProvDB`` / ``DProvDB-l_max``).
* ``dprovdb_lsum``  — additive approach with Def. 10 constraints
  (``DProvDB-l_sum`` in Fig. 6).
* ``vanilla``       — vanilla approach, Def. 10 constraints
  (``Vanilla`` / ``Vanilla-l_sum``).
* ``sprivatesql``   — simulated PrivateSQL (static views).
* ``chorus``        — plain Chorus.
* ``chorus_p``      — Chorus + provenance constraints.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import ChorusBaseline, ChorusPBaseline, SimulatedPrivateSQL
from repro.core.analyst import Analyst
from repro.core.engine import DProvDB
from repro.core.policies import build_constraints
from repro.datasets.base import DatasetBundle
from repro.dp.rng import SeedLike
from repro.exceptions import ReproError

SYSTEM_NAMES = ("dprovdb", "dprovdb_lsum", "vanilla", "sprivatesql",
                "chorus", "chorus_p")

#: Default pair of analysts used throughout the paper's experiments.
DEFAULT_PRIVILEGES = (1, 4)


def default_analysts(privileges: Sequence[int] = DEFAULT_PRIVILEGES
                     ) -> list[Analyst]:
    """Analysts named ``a1..an`` with the given privilege levels."""
    return [Analyst(f"a{i + 1}", privilege)
            for i, privilege in enumerate(privileges)]


def make_system(name: str, bundle: DatasetBundle, analysts: list[Analyst],
                epsilon: float, delta: float = 1e-9, tau: float = 1.0,
                seed: SeedLike = None):
    """Instantiate a compared system by its paper legend name."""
    if name == "dprovdb":
        system = DProvDB(bundle, analysts, epsilon, delta=delta,
                         mechanism="additive", tau=tau, seed=seed)
        system.name = name
        return system
    if name == "dprovdb_lsum":
        constraints = build_constraints(
            analysts, _view_names(bundle), epsilon, mechanism="vanilla",
            tau=tau, delta=delta, delta_cap=bundle.delta_cap(),
        )
        system = DProvDB(bundle, analysts, epsilon, delta=delta,
                         mechanism="additive", constraints=constraints,
                         seed=seed)
        system.name = name
        return system
    if name == "vanilla":
        system = DProvDB(bundle, analysts, epsilon, delta=delta,
                         mechanism="vanilla", tau=tau, seed=seed)
        system.name = name
        return system
    if name == "sprivatesql":
        return SimulatedPrivateSQL(bundle, analysts, epsilon, delta=delta,
                                   seed=seed)
    if name == "chorus":
        return ChorusBaseline(bundle, analysts, epsilon, delta=delta,
                              seed=seed)
    if name == "chorus_p":
        return ChorusPBaseline(bundle, analysts, epsilon, delta=delta,
                               seed=seed)
    raise ReproError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}")


def _view_names(bundle: DatasetBundle) -> tuple[str, ...]:
    return tuple(f"{bundle.fact_table}.{attr}"
                 for attr in bundle.view_attributes)


__all__ = ["DEFAULT_PRIVILEGES", "SYSTEM_NAMES", "default_analysts",
           "make_system"]
