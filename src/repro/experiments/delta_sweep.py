"""E7 — Figure 8: varying the per-query delta parameter.

At a fixed overall epsilon, a larger per-query delta lets the translation
module return a smaller epsilon for the same accuracy requirement, so the
budget depletes more slowly and slightly more BFS queries are answered.
Delta must stay below the inverse dataset size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.bfs import make_explorers, run_bfs_workload

PAPER_DELTAS = (1e-13, 1e-12, 1e-11, 1e-10, 1e-9)


@dataclass(frozen=True)
class DeltaCell:
    system: str
    delta: float
    schedule: str
    answered: int


def run_delta_sweep(dataset: str = "adult",
                    deltas: tuple[float, ...] = PAPER_DELTAS,
                    systems: tuple[str, ...] = ("dprovdb", "vanilla"),
                    schedules: tuple[str, ...] = ("round_robin", "random"),
                    epsilon: float = 6.4, threshold: float = 500.0,
                    accuracy: float = 40000.0,
                    privileges: tuple[int, ...] = (1, 4),
                    num_rows: int | None = None, max_steps: int = 4000,
                    seed: int = 0) -> list[DeltaCell]:
    """Fig. 8 series: #BFS queries answered vs per-query delta."""
    analysts = default_analysts(privileges)
    cells: list[DeltaCell] = []
    for schedule in schedules:
        for delta in deltas:
            for system_name in systems:
                run_seed = stable_seed("fig8", schedule, delta, system_name,
                                       seed)
                bundle = load_bundle(dataset, num_rows, seed)
                system = make_system(system_name, bundle, analysts, epsilon,
                                     delta=delta, seed=run_seed)
                system.setup()
                explorers = make_explorers(bundle, analysts,
                                           threshold=threshold,
                                           accuracy=accuracy)
                trace = run_bfs_workload(system, explorers, schedule=schedule,
                                         seed=run_seed, max_steps=max_steps)
                cells.append(DeltaCell(system_name, delta, schedule,
                                       trace.total_answered))
    return cells


def format_delta_sweep(cells: list[DeltaCell]) -> str:
    parts = []
    for schedule in sorted({c.schedule for c in cells}):
        subset = [c for c in cells if c.schedule == schedule]
        deltas = sorted({c.delta for c in subset})
        systems = list(dict.fromkeys(c.system for c in subset))
        rows = []
        for system in systems:
            row = [system]
            for delta in deltas:
                cell = next(c for c in subset
                            if c.system == system and c.delta == delta)
                row.append(cell.answered)
            rows.append(row)
        parts.append(format_table(
            ["system"] + [f"delta={d:g}" for d in deltas], rows,
            title=f"#BFS queries answered vs delta ({schedule})",
        ))
    return "\n\n".join(parts)


__all__ = ["DeltaCell", "PAPER_DELTAS", "format_delta_sweep", "run_delta_sweep"]
