"""E4 — Figure 5: effect of cached synopses as the workload grows.

With a fixed overall budget, systems with cached synopses (DProvDB, Vanilla)
answer ever more queries as the workload size grows — later queries hit the
caches for free — while Chorus/ChorusP saturate once the budget is gone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_workload
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin

PAPER_SIZES = (100, 800, 2000, 4000, 8000, 14000)
DEFAULT_SYSTEMS = ("dprovdb", "vanilla", "chorus", "chorus_p")


@dataclass(frozen=True)
class CachedSynopsesCell:
    system: str
    epsilon: float
    workload_size: int
    answered: float


def run_cached_synopses(dataset: str = "adult",
                        epsilons: tuple[float, ...] = (0.4, 1.6, 6.4),
                        sizes: tuple[int, ...] = (100, 400, 1200),
                        systems: tuple[str, ...] = DEFAULT_SYSTEMS,
                        accuracy: float = 10000.0,
                        privileges: tuple[int, ...] = (1, 4),
                        repeats: int = 2, num_rows: int | None = None,
                        seed: int = 0) -> list[CachedSynopsesCell]:
    """Fig. 5 series (paper scale: ``sizes=PAPER_SIZES``, 5 epsilons)."""
    analysts = default_analysts(privileges)
    cells: list[CachedSynopsesCell] = []
    for epsilon in epsilons:
        for size in sizes:
            per_analyst = max(1, size // len(analysts))
            for system_name in systems:
                counts = []
                for repeat in range(repeats):
                    run_seed = stable_seed("fig5", system_name, epsilon,
                                           size, repeat, seed)
                    bundle = load_bundle(dataset, num_rows, seed)
                    workload = generate_rrq(
                        bundle, analysts, per_analyst, accuracy=accuracy,
                        seed=stable_seed("rrq5", size, seed),
                    )
                    items = interleave_round_robin(workload)
                    system = make_system(system_name, bundle, analysts,
                                         epsilon, seed=run_seed)
                    result = run_workload(system, items, epsilon, "round_robin")
                    counts.append(result.total_answered)
                cells.append(CachedSynopsesCell(
                    system=system_name, epsilon=epsilon, workload_size=size,
                    answered=float(np.mean(counts)),
                ))
    return cells


def format_cached_synopses(cells: list[CachedSynopsesCell]) -> str:
    parts = []
    for epsilon in sorted({c.epsilon for c in cells}):
        subset = [c for c in cells if c.epsilon == epsilon]
        systems = list(dict.fromkeys(c.system for c in subset))
        sizes = sorted({c.workload_size for c in subset})
        rows = []
        for system in systems:
            row = [system]
            for size in sizes:
                cell = next(c for c in subset
                            if c.system == system and c.workload_size == size)
                row.append(cell.answered)
            rows.append(row)
        parts.append(format_table(
            ["system"] + [f"|Q|={s}" for s in sizes], rows,
            title=f"#answered vs workload size (eps={epsilon})",
        ))
    return "\n\n".join(parts)


__all__ = ["CachedSynopsesCell", "PAPER_SIZES", "format_cached_synopses",
           "run_cached_synopses"]
