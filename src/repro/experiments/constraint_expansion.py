"""E6 — Figure 7: the fairness/utility trade-off of constraint expansion.

Expanding each analyst's row constraint by ``tau >= 1`` (capped at the table
constraint) lets idle budget be "oversold": utility rises a little while the
nDCFG fairness score falls — the overall privacy guarantee is untouched
because the table constraint still binds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_workload
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_random, interleave_round_robin

PAPER_TAUS = (1.0, 1.3, 1.6, 1.9)


@dataclass(frozen=True)
class ExpansionCell:
    tau: float
    epsilon: float
    schedule: str
    answered: float
    ndcfg: float


def run_constraint_expansion(dataset: str = "adult",
                             taus: tuple[float, ...] = PAPER_TAUS,
                             epsilons: tuple[float, ...] = (0.4, 0.8, 1.6, 3.2),
                             schedules: tuple[str, ...] = ("round_robin",
                                                           "random"),
                             queries_per_analyst: int = 200,
                             accuracy: float = 10000.0,
                             privileges: tuple[int, ...] = (1, 4),
                             repeats: int = 2, num_rows: int | None = None,
                             seed: int = 0) -> list[ExpansionCell]:
    """Fig. 7 series: DProvDB (additive) under expanded analyst constraints."""
    analysts = default_analysts(privileges)
    cells: list[ExpansionCell] = []
    for schedule in schedules:
        for epsilon in epsilons:
            for tau in taus:
                answered, fairness = [], []
                for repeat in range(repeats):
                    run_seed = stable_seed("fig7", schedule, epsilon, tau,
                                           repeat, seed)
                    bundle = load_bundle(dataset, num_rows, seed)
                    workload = generate_rrq(
                        bundle, analysts, queries_per_analyst,
                        accuracy=accuracy, seed=stable_seed("rrq7", seed),
                    )
                    if schedule == "round_robin":
                        items = interleave_round_robin(workload)
                    else:
                        items = interleave_random(workload, seed=run_seed)
                    system = make_system("dprovdb", bundle, analysts,
                                         epsilon, tau=tau, seed=run_seed)
                    result = run_workload(system, items, epsilon, schedule)
                    answered.append(result.total_answered)
                    fairness.append(result.fairness(analysts))
                cells.append(ExpansionCell(
                    tau=tau, epsilon=epsilon, schedule=schedule,
                    answered=float(np.mean(answered)),
                    ndcfg=float(np.mean(fairness)),
                ))
    return cells


def format_constraint_expansion(cells: list[ExpansionCell]) -> str:
    parts = []
    for schedule in sorted({c.schedule for c in cells}):
        subset = [c for c in cells if c.schedule == schedule]
        taus = sorted({c.tau for c in subset})
        epsilons = sorted({c.epsilon for c in subset})
        for metric in ("answered", "ndcfg"):
            rows = []
            for epsilon in epsilons:
                row = [f"eps={epsilon}"]
                for tau in taus:
                    cell = next(c for c in subset
                                if c.tau == tau and c.epsilon == epsilon)
                    row.append(getattr(cell, metric))
                rows.append(row)
            label = "#answered" if metric == "answered" else "nDCFG"
            headers = [""] + [("static" if t == 1.0 else f"tau={t}")
                              for t in taus]
            parts.append(format_table(
                headers, rows, title=f"{label} vs tau ({schedule})"
            ))
    return "\n\n".join(parts)


__all__ = ["ExpansionCell", "PAPER_TAUS", "format_constraint_expansion",
           "run_constraint_expansion"]
