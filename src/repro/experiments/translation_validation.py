"""E8 — Figure 9: translation correctness and relative error.

Panel (a): for every answered BFS query, the realised answer-noise variance
``v_q`` must not exceed the submitted accuracy requirement ``v_i``
(Proposition 5.1 / Theorem 5.5); the paper plots the cumulative average of
``v_q - v_i``, which stays below zero.

Panel (b): the data-dependent relative error of each mechanism's answers on
the BFS workload — DProvDB/Vanilla show *larger* relative error than
Chorus-based systems precisely because they answer many more queries with
small true answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.systems import default_analysts, make_system
from repro.metrics.utility import relative_error
from repro.workloads.bfs import make_explorers


@dataclass(frozen=True)
class TranslationReport:
    """Results of the Fig. 9 validation run for one system."""

    system: str
    answered: int
    #: Cumulative average of v_q - v_i after each answered query.
    gap_cumulative_average: tuple[float, ...]
    mean_relative_error: float

    @property
    def final_gap(self) -> float:
        if not self.gap_cumulative_average:
            return 0.0
        return self.gap_cumulative_average[-1]

    @property
    def all_within_requirement(self) -> bool:
        """True iff every answered query met its accuracy requirement."""
        return all(g <= 1e-9 for g in self.gap_cumulative_average)


def _run_bfs_collecting(system, bundle, analysts, threshold: float,
                        accuracy: float, max_steps: int, seed: int
                        ) -> tuple[list[float], list[float], list[float]]:
    """Drive BFS manually so we can snoop v_q, v_i and true answers."""
    explorers = make_explorers(bundle, analysts, threshold=threshold,
                               accuracy=accuracy)
    gaps: list[float] = []
    true_answers: list[float] = []
    noisy_answers: list[float] = []
    steps = 0
    position = 0
    while steps < max_steps:
        live = [e for e in explorers if not e.done]
        if not live:
            break
        explorer = live[position % len(live)]
        position += 1
        sql = explorer.next_sql()
        answer = system.try_submit(explorer.analyst, sql,
                                   accuracy=explorer.accuracy)
        explorer.consume(None if answer is None else answer.value)
        steps += 1
        if answer is None:
            continue
        gaps.append(answer.answer_variance - explorer.accuracy)
        true_answers.append(bundle.database.execute(sql).scalar())
        noisy_answers.append(answer.value)
    return gaps, true_answers, noisy_answers


def run_translation_validation(dataset: str = "adult",
                               systems: tuple[str, ...] = (
                                   "dprovdb", "vanilla", "chorus", "chorus_p"),
                               epsilon: float = 6.4,
                               threshold: float = 500.0,
                               accuracy: float = 40000.0,
                               privileges: tuple[int, ...] = (1, 4),
                               num_rows: int | None = None,
                               max_steps: int = 2000,
                               seed: int = 0) -> list[TranslationReport]:
    """Regenerate both panels of Fig. 9."""
    analysts = default_analysts(privileges)
    reports: list[TranslationReport] = []
    for system_name in systems:
        run_seed = stable_seed("fig9", system_name, seed)
        bundle = load_bundle(dataset, num_rows, seed)
        system = make_system(system_name, bundle, analysts, epsilon,
                             seed=run_seed)
        system.setup()
        gaps, true_answers, noisy_answers = _run_bfs_collecting(
            system, bundle, analysts, threshold, accuracy, max_steps, seed
        )
        cumulative = tuple(np.cumsum(gaps) / np.arange(1, len(gaps) + 1)) \
            if gaps else ()
        errors = [relative_error(t, n, floor=1.0)
                  for t, n in zip(true_answers, noisy_answers)]
        reports.append(TranslationReport(
            system=system_name, answered=len(gaps),
            gap_cumulative_average=cumulative,
            mean_relative_error=float(np.mean(errors)) if errors else 0.0,
        ))
    return reports


def format_translation_validation(reports: list[TranslationReport]) -> str:
    rows = [
        [r.system, r.answered, r.final_gap,
         "yes" if r.all_within_requirement else "NO",
         r.mean_relative_error]
        for r in reports
    ]
    return format_table(
        ["system", "#answered", "avg(v_q - v_i)", "v_q <= v_i",
         "mean rel. error"],
        rows, title="translation validation + relative error (BFS, Fig. 9)",
    )


__all__ = ["TranslationReport", "format_translation_validation",
           "run_translation_validation"]
