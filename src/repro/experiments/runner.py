"""Generic workload runner shared by the figure regenerators."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.analyst import Analyst
from repro.metrics.fairness import ndcfg
from repro.workloads.rrq import QueryItem


@dataclass
class RunResult:
    """Outcome of feeding one interleaved workload to one system."""

    system: str
    epsilon: float
    schedule: str
    answered_by: dict[str, int] = field(default_factory=dict)
    rejected: int = 0
    setup_seconds: float = 0.0
    running_seconds: float = 0.0
    consumed: float = 0.0
    answers: list = field(default_factory=list)

    @property
    def total_answered(self) -> int:
        return sum(self.answered_by.values())

    def fairness(self, analysts: list[Analyst]) -> float:
        privileges = {a.name: a.privilege for a in analysts}
        return ndcfg(self.answered_by, privileges)

    @property
    def per_query_ms(self) -> float:
        if self.total_answered == 0:
            return 0.0
        return self.running_seconds * 1000.0 / self.total_answered


def run_workload(system, items: list[QueryItem], epsilon: float,
                 schedule: str, keep_answers: bool = False) -> RunResult:
    """Feed the interleaved ``items`` to ``system``, collecting statistics."""
    result = RunResult(system=system.name, epsilon=epsilon, schedule=schedule)
    result.setup_seconds = system.setup()

    started = time.perf_counter()
    for item in items:
        answer = system.try_submit(item.analyst, item.sql,
                                   accuracy=item.accuracy)
        if answer is None:
            result.rejected += 1
            continue
        result.answered_by[item.analyst] = (
            result.answered_by.get(item.analyst, 0) + 1
        )
        if keep_answers:
            result.answers.append((item, answer))
    result.running_seconds = time.perf_counter() - started
    result.consumed = system.total_consumed()
    return result


__all__ = ["RunResult", "run_workload"]
