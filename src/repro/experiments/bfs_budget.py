"""E2 — Figure 4: BFS task, cumulative budget vs workload index.

The BFS exploration task has a bounded natural workload, so the interesting
series is how fast each system's cumulative budget grows as queries stream
in: Chorus/ChorusP grow linearly (fresh budget per query) while Vanilla and
DProvDB flatten once their synopses cover the traversal, with DProvDB
flattening lowest (shared global synopses across analysts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.rng import stable_seed
from repro.experiments.end_to_end import load_bundle
from repro.experiments.reporting import format_table
from repro.experiments.systems import default_analysts, make_system
from repro.workloads.bfs import BfsTrace, make_explorers, run_bfs_workload

DEFAULT_SYSTEMS = ("chorus_p", "chorus", "vanilla", "dprovdb")


@dataclass(frozen=True)
class BfsSeries:
    """Cumulative-budget trace for one system on one dataset."""

    system: str
    dataset: str
    budgets: tuple[float, ...]      # cumulative budget after each query
    answered: int
    total_queries: int


def run_bfs_budget(dataset: str = "adult",
                   systems: tuple[str, ...] = DEFAULT_SYSTEMS,
                   epsilon: float = 6.4, threshold: float = 500.0,
                   accuracy: float = 40000.0,
                   privileges: tuple[int, ...] = (1, 4),
                   num_rows: int | None = None,
                   max_steps: int = 4000, seed: int = 0) -> list[BfsSeries]:
    """Regenerate the Fig. 4 series for one dataset."""
    analysts = default_analysts(privileges)
    series: list[BfsSeries] = []
    for system_name in systems:
        run_seed = stable_seed("bfs", dataset, system_name, seed)
        bundle = load_bundle(dataset, num_rows, seed)
        system = make_system(system_name, bundle, analysts, epsilon,
                             seed=run_seed)
        system.setup()
        explorers = make_explorers(bundle, analysts, threshold=threshold,
                                   accuracy=accuracy)
        trace: BfsTrace = run_bfs_workload(system, explorers,
                                           schedule="round_robin",
                                           seed=run_seed,
                                           max_steps=max_steps)
        series.append(BfsSeries(
            system=system_name, dataset=dataset,
            budgets=tuple(trace.cumulative_budgets()),
            answered=trace.total_answered,
            total_queries=trace.total_queries,
        ))
    return series


def format_bfs_budget(series: list[BfsSeries], points: int = 8) -> str:
    """Sampled cumulative-budget curves, one row per system."""
    if not series:
        return "(no series)"
    longest = max(len(s.budgets) for s in series)
    indices = [int(round(i * (longest - 1) / max(1, points - 1)))
               for i in range(points)]
    rows = []
    for s in series:
        row = [s.system]
        for idx in indices:
            if idx < len(s.budgets):
                row.append(s.budgets[idx])
            else:
                row.append(s.budgets[-1] if s.budgets else 0.0)
        row.append(s.answered)
        rows.append(row)
    headers = ["system"] + [f"q{idx}" for idx in indices] + ["#answered"]
    return format_table(
        headers, rows,
        title=f"[{series[0].dataset}] BFS cumulative budget vs workload index",
    )


__all__ = ["BfsSeries", "format_bfs_budget", "run_bfs_budget"]
