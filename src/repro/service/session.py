"""Analyst sessions and the request/response envelope of the service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.engine import Answer
from repro.db.sql.ast import SelectStatement


@dataclass(frozen=True)
class QueryRequest:
    """One query as submitted to the service.

    Exactly one of ``accuracy`` (expected-squared-error bound) or
    ``epsilon`` (explicit budget) must be set, mirroring the engine's dual
    submission modes.
    """

    sql: str | SelectStatement
    accuracy: float | None = None
    epsilon: float | None = None


class Lineage(NamedTuple):
    """How an answer came to be — derived strictly from what already
    happened, never steering execution.  A ``NamedTuple`` rather than a
    frozen dataclass: one is built per answer on the hot path, and
    C-level tuple construction keeps that measurably cheaper than ten
    ``object.__setattr__`` calls.

    ``source`` is one of ``fresh`` (new noisy release), ``cached``
    (slow-path cache hit), ``fast_lane`` (lock-free memoized-answer
    lane), ``rejected`` (constraint refusal), or ``error``.  A
    fast-lane-disabled replay reports ``cached`` where the enabled run
    reports ``fast_lane`` — both are non-fresh, and the bit-equality
    invariant compares the fresh/non-fresh boolean, not the label.

    ``ledger_seq`` is the durable ledger's high-water mark at accounting
    time (recovery to at least this sequence includes this answer's
    charge); ``None`` without durability.  ``worker``/``incarnation``
    identify the mp worker process that computed the answer; ``None``
    under the threaded backend.

    Field order puts the seven per-answer fields first so the executor's
    hot-path construction is fully positional (no kwargs dict); the
    trailing three are stamped later by ``_replace``/the mp parent.
    """

    view: str | None = None
    source: str = "fresh"
    epsilon: float = 0.0
    mechanism: str | None = None
    composition: str | None = None
    synopsis_generation: int = 0
    trace_id: str | None = None
    ledger_seq: int | None = None
    worker: int | None = None
    incarnation: int | None = None


@dataclass(frozen=True)
class QueryResponse:
    """Outcome of one request, in the batch's original position.

    Scalar queries carry ``answer``; GROUP BY queries carry ``groups`` (the
    ``[(key, Answer), ...]`` list of the engine's full-domain semantics).
    Refused or failed queries carry ``error`` with ``rejected`` marking a
    constraint refusal as opposed to a malformed request.  ``lineage``
    explains the outcome; it defaults to ``None`` so pre-lineage
    constructors and old wire clients are untouched.
    """

    index: int
    answer: Answer | None = None
    groups: tuple[tuple[tuple, Answer], ...] | None = None
    error: str | None = None
    rejected: bool = False
    lineage: Lineage | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def answers(self) -> tuple[Answer, ...]:
        """Every released :class:`Answer` in this response (empty on
        failure; one per group for GROUP BY)."""
        if self.answer is not None:
            return (self.answer,)
        return tuple(answer for _, answer in self.groups or ())

    def value(self) -> float:
        """Scalar answer value; raises if the query failed or was grouped."""
        if self.answer is None:
            raise ValueError(f"response {self.index} has no scalar answer "
                             f"(error={self.error!r})")
        return self.answer.value


@dataclass
class Session:
    """One analyst's open connection to the service.

    Sessions are cheap bookkeeping handles: several sessions may share one
    analyst identity (e.g. one per worker thread), and all of them draw from
    that analyst's single provenance row.  Counters are updated by the
    service under its lock.
    """

    session_id: int
    analyst: str
    submitted: int = 0
    answered: int = 0
    rejected: int = 0
    failed: int = 0
    cache_hits: int = 0
    epsilon_spent: float = 0.0
    batches: int = 0
    closed: bool = False

    def _record(self, response: QueryResponse) -> None:
        self.submitted += 1
        if not response.ok:
            if response.rejected:
                self.rejected += 1
            else:
                self.failed += 1
            return
        self.answered += 1
        for answer in response.answers():
            self.epsilon_spent += answer.epsilon_charged
            if answer.cache_hit:
                self.cache_hits += 1


__all__ = ["Lineage", "QueryRequest", "QueryResponse", "Session"]
