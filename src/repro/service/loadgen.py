"""Load generation for the query service: mixed multi-analyst workloads.

The mix mirrors the paper's evaluation tasks: randomized range queries
(:mod:`repro.workloads.rrq`), GROUP BY histograms over categorical
attributes (Appendix D semantics), and BFS-style dyadic range probes — the
exact query shapes :class:`repro.workloads.bfs.BfsExplorer` emits, laid out
statically so a replay is deterministic and comparable across modes.

:func:`run_throughput` replays a workload across N threads (one session per
thread) in either ``single`` (one query at a time, arrival order) or
``batched`` (``submit_batch`` through the view-grouping planner) mode and
reports queries/sec plus cache statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.analyst import Analyst
from repro.datasets.base import DatasetBundle
from repro.dp.rng import SeedLike, ensure_generator
from repro.exceptions import ReproError
from repro.metrics.runtime import Stopwatch
from repro.service.service import QueryService
from repro.service.session import QueryRequest
from repro.workloads.rrq import generate_rrq, ordered_attributes

MODES = ("single", "batched")


def _dyadic_ranges(low: int, high: int, depth: int) -> list[tuple[int, int]]:
    """All BFS decomposition-tree nodes down to ``depth`` (root = level 0)."""
    ranges = [(low, high)]
    level = [(low, high)]
    for _ in range(depth):
        nxt: list[tuple[int, int]] = []
        for lo, hi in level:
            if lo >= hi:
                continue
            mid = (lo + hi) // 2
            nxt.extend([(lo, mid), (mid + 1, hi)])
        ranges.extend(nxt)
        level = nxt
    return ranges


def bfs_style_queries(bundle: DatasetBundle, attribute: str,
                      depth: int = 3) -> list[str]:
    """The counting queries a BFS traversal of ``attribute`` would issue."""
    schema = bundle.database.table(bundle.fact_table).schema
    domain = schema.domain(attribute)
    return [
        (f"SELECT COUNT(*) FROM {bundle.fact_table} "
         f"WHERE {attribute} BETWEEN {lo} AND {hi}")
        for lo, hi in _dyadic_ranges(domain.low, domain.high, depth)
    ]


def _group_by_attributes(bundle: DatasetBundle,
                         max_domain: int = 24) -> tuple[str, ...]:
    """View attributes with small domains — cheap full-domain GROUP BYs."""
    schema = bundle.database.table(bundle.fact_table).schema
    return tuple(a for a in bundle.view_attributes
                 if schema.domain(a).size <= max_domain)


def build_mixed_workload(bundle: DatasetBundle, analysts: list[Analyst],
                         queries_per_analyst: int,
                         accuracy: float = 40000.0,
                         group_by_fraction: float = 0.1,
                         bfs_fraction: float = 0.2,
                         seed: SeedLike = 0
                         ) -> dict[str, list[QueryRequest]]:
    """Deterministic per-analyst request streams with the paper's mix.

    Roughly ``group_by_fraction`` of each stream are GROUP BY histograms and
    ``bfs_fraction`` are BFS-style dyadic ranges; the rest are RRQs.  The
    accuracy requirement is jittered per query (half to twice ``accuracy``)
    so streams exercise the strictest-first planning.
    """
    rng = ensure_generator(seed)
    rrq = generate_rrq(bundle, analysts, queries_per_analyst,
                       accuracy=accuracy, seed=rng)
    group_attrs = _group_by_attributes(bundle)
    bfs_pool = [sql
                for attr in ordered_attributes(bundle)[:2]
                for sql in bfs_style_queries(bundle, attr)]

    workload: dict[str, list[QueryRequest]] = {}
    for analyst in analysts:
        stream: list[QueryRequest] = []
        for item in rrq[analyst.name]:
            jitter = float(accuracy * 2.0 ** rng.uniform(-1.0, 1.0))
            roll = rng.random()
            if roll < group_by_fraction and group_attrs:
                attr = group_attrs[int(rng.integers(0, len(group_attrs)))]
                sql = (f"SELECT {attr}, COUNT(*) FROM {bundle.fact_table} "
                       f"GROUP BY {attr}")
            elif roll < group_by_fraction + bfs_fraction and bfs_pool:
                sql = bfs_pool[int(rng.integers(0, len(bfs_pool)))]
            else:
                sql = item.sql
            stream.append(QueryRequest(sql, accuracy=jitter))
        workload[analyst.name] = stream
    return workload


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one load-generation run."""

    mode: str
    threads: int
    total_queries: int
    answered: int
    rejected: int
    failed: int
    seconds: float
    answer_cache_hit_rate: float
    synopsis_cache_hit_rate: float
    fresh_releases: int
    total_epsilon_spent: float

    @property
    def queries_per_second(self) -> float:
        return self.total_queries / self.seconds if self.seconds > 0 else 0.0


def run_throughput(service: QueryService, analysts: list[Analyst],
                   workload: dict[str, list[QueryRequest]],
                   mode: str = "batched", threads: int = 4,
                   batch_size: int = 16) -> ThroughputResult:
    """Replay ``workload`` against ``service`` across ``threads`` workers.

    Analysts are assigned to threads round-robin; each worker opens one
    session per analyst it owns and replays that analyst's stream either
    query-by-query (``single``) or in ``batch_size`` slices (``batched``).
    """
    if mode not in MODES:
        raise ReproError(f"unknown mode {mode!r}; choose from {MODES}")
    if threads < 1:
        raise ReproError(f"threads must be >= 1, got {threads}")

    # Counters on the service are cumulative over its lifetime; report
    # this call's delta so a reused service doesn't inflate q/s.
    stats0 = service.stats.as_dict()
    cache0 = service.cache_stats.as_dict()

    assignments: list[list[Analyst]] = [[] for _ in range(threads)]
    for i, analyst in enumerate(analysts):
        assignments[i % threads].append(analyst)
    # More threads than analysts leaves some workers without a stream; the
    # start barrier must count only the workers that actually launch.
    active = [owned for owned in assignments if owned]
    barrier = threading.Barrier(len(active))
    errors: list[BaseException] = []

    def worker(owned: list[Analyst]) -> None:
        try:
            sessions = {a.name: service.open_session(a.name) for a in owned}
            barrier.wait()
            for analyst in owned:
                stream = workload.get(analyst.name, [])
                session = sessions[analyst.name]
                if mode == "single":
                    for request in stream:
                        service.submit(session, request.sql,
                                       accuracy=request.accuracy,
                                       epsilon=request.epsilon)
                else:
                    for start in range(0, len(stream), batch_size):
                        service.submit_batch(
                            session, stream[start:start + batch_size])
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    pool = [threading.Thread(target=worker, args=(owned,), daemon=True)
            for owned in active]
    watch = Stopwatch()
    with watch:
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    if errors:
        raise errors[0]

    stats = service.stats.as_dict()
    cache = service.cache_stats.as_dict()
    answer_hits = stats["answer_cache_hits"] - stats0["answer_cache_hits"]
    fresh = stats["fresh_releases"] - stats0["fresh_releases"]
    lookups = (cache["hits"] + cache["misses"]
               - cache0["hits"] - cache0["misses"])
    return ThroughputResult(
        mode=mode, threads=len(pool),
        total_queries=stats["submitted"] - stats0["submitted"],
        answered=stats["answered"] - stats0["answered"],
        rejected=stats["rejected"] - stats0["rejected"],
        failed=stats["failed"] - stats0["failed"],
        seconds=watch.seconds,
        answer_cache_hit_rate=(answer_hits / (answer_hits + fresh)
                               if answer_hits + fresh else 0.0),
        synopsis_cache_hit_rate=((cache["hits"] - cache0["hits"]) / lookups
                                 if lookups else 0.0),
        fresh_releases=fresh,
        total_epsilon_spent=(
            sum(stats["epsilon_by_analyst"].values())
            - sum(stats0["epsilon_by_analyst"].values())),
    )


def format_throughput(results: list[ThroughputResult],
                      title: str = "service throughput") -> str:
    """Text table comparing load-generation runs."""
    header = (f"{'mode':>8s} {'thr':>4s} {'queries':>8s} {'ans':>7s} "
              f"{'rej':>6s} {'q/s':>9s} {'hit%':>6s} {'fresh':>6s} "
              f"{'eps':>8s}")
    lines = [f"== {title} ==", header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.mode:>8s} {r.threads:>4d} {r.total_queries:>8d} "
            f"{r.answered:>7d} {r.rejected:>6d} {r.queries_per_second:>9.1f} "
            f"{100.0 * r.answer_cache_hit_rate:>5.1f}% {r.fresh_releases:>6d} "
            f"{r.total_epsilon_spent:>8.3f}")
    return "\n".join(lines)


__all__ = [
    "MODES",
    "ThroughputResult",
    "bfs_style_queries",
    "build_mixed_workload",
    "format_throughput",
    "run_throughput",
]
