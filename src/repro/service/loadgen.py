"""Load generation for the query service: mixed and disjoint workloads.

The *mixed* workload mirrors the paper's evaluation tasks: randomized
range queries (:mod:`repro.workloads.rrq`), GROUP BY histograms over
categorical attributes (Appendix D semantics), and BFS-style dyadic range
probes — the exact query shapes :class:`repro.workloads.bfs.BfsExplorer`
emits, laid out statically so a replay is deterministic and comparable
across modes.

The *disjoint-view* workload (:func:`build_disjoint_workload`) is the
sharding stress: each analyst's stream targets its own wide marginal view
(every predicate covers all of that view's attributes, so no other view
answers it), which means per-view critical sections never contend across
analysts and the sharded service's parallelism is actually exercised —
the measured half of ``bench-service --compare-global``.

:func:`run_throughput` replays a workload across N threads (one session per
thread) in either ``single`` (one query at a time, arrival order) or
``batched`` (``submit_batch`` through the view-grouping planner) mode and
reports queries/sec plus cache statistics.

:func:`run_remote_throughput` is the over-the-wire twin: the same
workloads replayed through :class:`repro.client.RemoteAnalyst`
connections against a running ``repro serve`` daemon, in either
*closed-loop* (back-to-back, like the in-process driver) or *open-loop*
arrival (Poisson arrivals at a target rate, the realistic serving
shape — latency is measured from each request's **scheduled** arrival,
so queueing delay shows up in the tail instead of silently throttling
the offered load).  Both drivers report p50/p95 latency.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

from repro.core.analyst import Analyst
from repro.datasets.base import DatasetBundle
from repro.dp.rng import SeedLike, ensure_generator
from repro.exceptions import ReproError
from repro.metrics.runtime import Stopwatch
from repro.service.service import QueryService
from repro.service.session import QueryRequest
from repro.workloads.rrq import generate_rrq, ordered_attributes

MODES = ("single", "batched")

#: Arrival processes for the remote driver: ``closed`` replays
#: back-to-back; ``open`` draws Poisson arrivals at ``rate_qps``.
ARRIVALS = ("closed", "open")


def _dyadic_ranges(low: int, high: int, depth: int) -> list[tuple[int, int]]:
    """All BFS decomposition-tree nodes down to ``depth`` (root = level 0)."""
    ranges = [(low, high)]
    level = [(low, high)]
    for _ in range(depth):
        nxt: list[tuple[int, int]] = []
        for lo, hi in level:
            if lo >= hi:
                continue
            mid = (lo + hi) // 2
            nxt.extend([(lo, mid), (mid + 1, hi)])
        ranges.extend(nxt)
        level = nxt
    return ranges


def bfs_style_queries(bundle: DatasetBundle, attribute: str,
                      depth: int = 3) -> list[str]:
    """The counting queries a BFS traversal of ``attribute`` would issue."""
    schema = bundle.database.table(bundle.fact_table).schema
    domain = schema.domain(attribute)
    return [
        (f"SELECT COUNT(*) FROM {bundle.fact_table} "
         f"WHERE {attribute} BETWEEN {lo} AND {hi}")
        for lo, hi in _dyadic_ranges(domain.low, domain.high, depth)
    ]


def _group_by_attributes(bundle: DatasetBundle,
                         max_domain: int = 24) -> tuple[str, ...]:
    """View attributes with small domains — cheap full-domain GROUP BYs."""
    schema = bundle.database.table(bundle.fact_table).schema
    return tuple(a for a in bundle.view_attributes
                 if schema.domain(a).size <= max_domain)


def build_mixed_workload(bundle: DatasetBundle, analysts: list[Analyst],
                         queries_per_analyst: int,
                         accuracy: float = 40000.0,
                         group_by_fraction: float = 0.1,
                         bfs_fraction: float = 0.2,
                         seed: SeedLike = 0
                         ) -> dict[str, list[QueryRequest]]:
    """Deterministic per-analyst request streams with the paper's mix.

    Roughly ``group_by_fraction`` of each stream are GROUP BY histograms and
    ``bfs_fraction`` are BFS-style dyadic ranges; the rest are RRQs.  The
    accuracy requirement is jittered per query (half to twice ``accuracy``)
    so streams exercise the strictest-first planning.
    """
    rng = ensure_generator(seed)
    rrq = generate_rrq(bundle, analysts, queries_per_analyst,
                       accuracy=accuracy, seed=rng)
    group_attrs = _group_by_attributes(bundle)
    bfs_pool = [sql
                for attr in ordered_attributes(bundle)[:2]
                for sql in bfs_style_queries(bundle, attr)]

    workload: dict[str, list[QueryRequest]] = {}
    for analyst in analysts:
        stream: list[QueryRequest] = []
        for item in rrq[analyst.name]:
            jitter = float(accuracy * 2.0 ** rng.uniform(-1.0, 1.0))
            roll = rng.random()
            if roll < group_by_fraction and group_attrs:
                attr = group_attrs[int(rng.integers(0, len(group_attrs)))]
                sql = (f"SELECT {attr}, COUNT(*) FROM {bundle.fact_table} "
                       f"GROUP BY {attr}")
            elif roll < group_by_fraction + bfs_fraction and bfs_pool:
                sql = bfs_pool[int(rng.integers(0, len(bfs_pool)))]
            else:
                sql = item.sql
            stream.append(QueryRequest(sql, accuracy=jitter))
        workload[analyst.name] = stream
    return workload


def disjoint_view_attribute_sets(bundle: DatasetBundle, num_views: int,
                                 width: int = 2) -> list[tuple[str, ...]]:
    """``num_views`` deterministic attribute combinations for wide views.

    Every set starts with an ordered (integer) attribute — so range
    predicates can anchor on it — and is completed from the remaining
    view attributes; sets are unique, generated in a fixed order, and
    independent of any RNG so the same workload can be rebuilt for a
    baseline comparison.
    """
    if width < 2:
        raise ReproError(f"disjoint views need width >= 2, got {width}")
    ordered = ordered_attributes(bundle)
    if not ordered:
        raise ReproError("no ordered attribute to anchor range queries on")
    all_attrs = list(bundle.view_attributes)
    sets: list[tuple[str, ...]] = []
    seen: set[frozenset] = set()
    # Round-robin over the integer anchors; each anchor keeps its own
    # combination cursor so sets spread across anchors deterministically.
    cursors = {
        anchor: itertools.combinations(
            [a for a in all_attrs if a != anchor], width - 1)
        for anchor in ordered
    }
    exhausted: set[str] = set()
    anchors = itertools.cycle(ordered)
    while len(sets) < num_views and len(exhausted) < len(ordered):
        anchor = next(anchors)
        if anchor in exhausted:
            continue
        for rest in cursors[anchor]:
            key = frozenset((anchor,) + rest)
            if key not in seen:
                seen.add(key)
                sets.append((anchor,) + rest)
                break
        else:
            exhausted.add(anchor)
    if len(sets) < num_views:
        raise ReproError(
            f"could not derive {num_views} distinct attribute sets "
            f"(width {width}) from {len(all_attrs)} attributes"
        )
    return sets


def register_disjoint_views(engine,
                            attribute_sets: list[tuple[str, ...]]
                            ) -> list[str]:
    """Register each attribute set as a wide histogram view; returns names."""
    return [engine.register_view(attrs) for attrs in attribute_sets]


def _aligned_range(domain, rng) -> tuple[int, int]:
    """A random [low, high] range aligned with the domain's bin bounds."""
    if getattr(domain, "bin_size", 1) > 1:
        first = int(rng.integers(0, domain.size))
        last = int(rng.integers(first, domain.size))
        return domain.bin_bounds(first)[0], domain.bin_bounds(last)[1]
    low = int(rng.integers(domain.low, domain.high + 1))
    return low, int(rng.integers(low, domain.high + 1))


def build_disjoint_workload(bundle: DatasetBundle, analysts: list[Analyst],
                            queries_per_analyst: int,
                            attribute_sets: list[tuple[str, ...]],
                            accuracy: float = 40000.0,
                            seed: SeedLike = 0
                            ) -> dict[str, list[QueryRequest]]:
    """Per-analyst streams where analyst ``i`` only queries wide view ``i``.

    Every query's predicate covers *all* attributes of the analyst's
    assigned set (a range on the integer anchor, plus membership/threshold
    conditions on the rest), so only the corresponding registered wide
    view can answer it — streams for different analysts touch disjoint
    views.  Accuracy requirements are jittered exactly like the mixed
    workload so strictest-first planning stays exercised.
    """
    rng = ensure_generator(seed)
    schema = bundle.database.table(bundle.fact_table).schema
    table = bundle.fact_table

    workload: dict[str, list[QueryRequest]] = {}
    for i, analyst in enumerate(analysts):
        attrs = attribute_sets[i % len(attribute_sets)]
        anchor, rest = attrs[0], attrs[1:]
        domain = schema.domain(anchor)
        stream: list[QueryRequest] = []
        for _ in range(queries_per_analyst):
            low, high = _aligned_range(domain, rng)
            conditions = [f"{anchor} BETWEEN {low} AND {high}"]
            for attr in rest:
                other = schema.domain(attr)
                if hasattr(other, "values"):  # categorical: membership
                    count = max(1, int(rng.integers(1, other.size + 1)))
                    literals = ", ".join(f"'{v}'"
                                         for v in other.values[:count])
                    conditions.append(f"{attr} IN ({literals})")
                else:  # integer: bin-aligned threshold
                    cut, _ = _aligned_range(other, rng)
                    conditions.append(f"{attr} >= {cut}")
            sql = (f"SELECT COUNT(*) FROM {table} "
                   f"WHERE {' AND '.join(conditions)}")
            jitter = float(accuracy * 2.0 ** rng.uniform(-1.0, 1.0))
            stream.append(QueryRequest(sql, accuracy=jitter))
        workload[analyst.name] = stream
    return workload


def latency_percentile(latencies_ms: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``latencies_ms`` (0.0 when empty)."""
    if not latencies_ms:
        return 0.0
    ordered = sorted(latencies_ms)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one load-generation run (in-process or over the wire).

    Latency percentiles are per *call* — one submitted query in
    ``single`` mode, one whole batch in ``batched`` mode — in
    milliseconds.  Under open-loop arrival they are measured from the
    request's scheduled arrival time, so they include queueing delay.
    """

    mode: str
    threads: int
    total_queries: int
    answered: int
    rejected: int
    failed: int
    seconds: float
    answer_cache_hit_rate: float
    synopsis_cache_hit_rate: float
    fresh_releases: int
    total_epsilon_spent: float
    execution: str = "sharded"
    shards: int = 0
    #: Execution backend the service ran on (``threaded`` or ``mp`` —
    #: the multiprocessing shard workers).
    backend: str = "threaded"
    transport: str = "inproc"
    arrival: str = "closed"
    offered_qps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    #: Durability axis: ``"none"`` (no write-ahead ledger) or the fsync
    #: policy the service journaled under (``always``/``batch``/``off``).
    durability: str = "none"

    @property
    def queries_per_second(self) -> float:
        return self.total_queries / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready record (the ``--json`` bench artifact rows)."""
        return {
            "mode": self.mode, "threads": self.threads,
            "execution": self.execution, "shards": self.shards,
            "backend": self.backend,
            "transport": self.transport, "arrival": self.arrival,
            "offered_qps": self.offered_qps,
            "total_queries": self.total_queries, "answered": self.answered,
            "rejected": self.rejected, "failed": self.failed,
            "seconds": self.seconds,
            "queries_per_second": self.queries_per_second,
            "answer_cache_hit_rate": self.answer_cache_hit_rate,
            "synopsis_cache_hit_rate": self.synopsis_cache_hit_rate,
            "fresh_releases": self.fresh_releases,
            "total_epsilon_spent": self.total_epsilon_spent,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "durability": self.durability,
        }


def run_throughput(service: QueryService, analysts: list[Analyst],
                   workload: dict[str, list[QueryRequest]],
                   mode: str = "batched", threads: int = 4,
                   batch_size: int = 16) -> ThroughputResult:
    """Replay ``workload`` against ``service`` across ``threads`` workers.

    Analysts are assigned to threads round-robin; each worker opens one
    session per analyst it owns and replays that analyst's stream either
    query-by-query (``single``) or in ``batch_size`` slices (``batched``).
    """
    if mode not in MODES:
        raise ReproError(f"unknown mode {mode!r}; choose from {MODES}")
    if threads < 1:
        raise ReproError(f"threads must be >= 1, got {threads}")

    # Counters on the service are cumulative over its lifetime; report
    # this call's delta so a reused service doesn't inflate q/s.
    stats0 = service.stats.as_dict()
    cache0 = service.cache_stats.as_dict()

    assignments: list[list[Analyst]] = [[] for _ in range(threads)]
    for i, analyst in enumerate(analysts):
        assignments[i % threads].append(analyst)
    # More threads than analysts leaves some workers without a stream; the
    # start barrier must count only the workers that actually launch.
    active = [owned for owned in assignments if owned]
    barrier = threading.Barrier(len(active))
    errors: list[BaseException] = []
    latencies: list[list[float]] = [[] for _ in active]

    def worker(index: int, owned: list[Analyst]) -> None:
        try:
            timed = latencies[index]
            sessions = {a.name: service.open_session(a.name) for a in owned}
            barrier.wait()
            for analyst in owned:
                stream = workload.get(analyst.name, [])
                session = sessions[analyst.name]
                if mode == "single":
                    for request in stream:
                        sent = time.perf_counter()
                        service.submit(session, request.sql,
                                       accuracy=request.accuracy,
                                       epsilon=request.epsilon)
                        timed.append(1e3 * (time.perf_counter() - sent))
                else:
                    for start in range(0, len(stream), batch_size):
                        sent = time.perf_counter()
                        service.submit_batch(
                            session, stream[start:start + batch_size])
                        timed.append(1e3 * (time.perf_counter() - sent))
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    pool = [threading.Thread(target=worker, args=(i, owned), daemon=True)
            for i, owned in enumerate(active)]
    watch = Stopwatch()
    with watch:
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    if errors:
        raise errors[0]

    stats = service.stats.as_dict()
    cache = service.cache_stats.as_dict()
    timings = [ms for per_worker in latencies for ms in per_worker]
    return _delta_result(
        mode, len(pool), stats0, cache0, stats, cache, watch.seconds,
        execution=service.execution,
        shards=(service.sharding.num_shards if service.sharding else 0),
        backend=service.backend,
        timings_ms=timings,
        durability=(service.durability.fsync if service.durability
                    else "none"),
    )


def _delta_result(mode: str, threads: int, stats0: dict, cache0: dict,
                  stats: dict, cache: dict, seconds: float, *,
                  execution: str, shards: int, timings_ms: list[float],
                  backend: str = "threaded",
                  transport: str = "inproc", arrival: str = "closed",
                  offered_qps: float = 0.0,
                  durability: str = "none") -> ThroughputResult:
    """Fold before/after stats snapshots into one :class:`ThroughputResult`.

    Shared by the in-process and remote drivers: both observe the service
    through the same counters (locally or via ``/v1/snapshot``), so the
    accounting columns are directly comparable across transports.
    """
    answer_hits = stats["answer_cache_hits"] - stats0["answer_cache_hits"]
    fresh = stats["fresh_releases"] - stats0["fresh_releases"]
    lookups = (cache["hits"] + cache["misses"]
               - cache0["hits"] - cache0["misses"])
    return ThroughputResult(
        mode=mode, threads=threads,
        execution=execution, shards=shards, backend=backend,
        transport=transport, arrival=arrival, offered_qps=offered_qps,
        total_queries=stats["submitted"] - stats0["submitted"],
        answered=stats["answered"] - stats0["answered"],
        rejected=stats["rejected"] - stats0["rejected"],
        failed=stats["failed"] - stats0["failed"],
        seconds=seconds,
        answer_cache_hit_rate=(answer_hits / (answer_hits + fresh)
                               if answer_hits + fresh else 0.0),
        synopsis_cache_hit_rate=((cache["hits"] - cache0["hits"]) / lookups
                                 if lookups else 0.0),
        fresh_releases=fresh,
        total_epsilon_spent=(
            sum(stats["epsilon_by_analyst"].values())
            - sum(stats0["epsilon_by_analyst"].values())),
        latency_p50_ms=latency_percentile(timings_ms, 0.50),
        latency_p95_ms=latency_percentile(timings_ms, 0.95),
        durability=durability,
    )


def run_sequential_replay(service: QueryService, analysts: list[Analyst],
                          workload: dict[str, list[QueryRequest]],
                          batch_size: int = 16
                          ) -> tuple[ThroughputResult, list[tuple]]:
    """Replay a workload batched on one caller thread, capturing every
    response for bit-level comparison across execution backends.

    One caller thread makes the replay order deterministic; parallelism
    is still exercised *inside* each ``submit_batch`` (the threaded
    backend fans per-view groups across its shard pool, the mp backend
    across its worker processes).  With ``noise_streams="per_view"`` and
    an integer seed, two backends replaying the same workload must then
    produce bitwise-identical answers — the equality the
    ``--compare-threaded`` bench gate asserts.

    Returns the usual :class:`ThroughputResult` plus the flat response
    trace: one tuple per response, ``("ok", value_or_groups, epsilon)``
    for answers (group values as a tuple of ``(key, value, epsilon)``),
    ``("rejected", reason, None)`` for refusals, ``("error", message,
    None)`` for failures — raw floats, no rounding.
    """
    stats0 = service.stats.as_dict()
    cache0 = service.cache_stats.as_dict()
    trace: list[tuple] = []
    latencies: list[float] = []
    watch = Stopwatch()
    with watch:
        for analyst in analysts:
            stream = workload.get(analyst.name, [])
            session = service.open_session(analyst.name)
            try:
                for start in range(0, len(stream), batch_size):
                    sent = time.perf_counter()
                    responses = service.submit_batch(
                        session, stream[start:start + batch_size])
                    latencies.append(1e3 * (time.perf_counter() - sent))
                    for r in responses:
                        if r.answer is not None:
                            trace.append(("ok", r.value(),
                                          r.answer.epsilon_charged))
                        elif r.groups is not None:
                            trace.append((
                                "ok",
                                tuple((key, a.value, a.epsilon_charged)
                                      for key, a in r.groups),
                                sum(a.epsilon_charged
                                    for _, a in r.groups)))
                        elif r.rejected:
                            trace.append(("rejected", r.error, None))
                        else:
                            trace.append(("error", r.error, None))
            finally:
                service.close_session(session)
    stats = service.stats.as_dict()
    cache = service.cache_stats.as_dict()
    result = _delta_result(
        "batched", 1, stats0, cache0, stats, cache, watch.seconds,
        execution=service.execution,
        shards=(service.sharding.num_shards if service.sharding else 0),
        backend=service.backend,
        timings_ms=latencies,
        durability=(service.durability.fsync if service.durability
                    else "none"),
    )
    return result, trace


def run_remote_throughput(base_url: str, analysts: list[Analyst],
                          workload: dict[str, list[QueryRequest]],
                          mode: str = "batched", connections: int = 4,
                          batch_size: int = 16, arrival: str = "closed",
                          rate_qps: float | None = None,
                          tokens: dict[str, str] | None = None,
                          seed: SeedLike = 0,
                          timeout: float = 60.0) -> ThroughputResult:
    """Replay ``workload`` against a running daemon over HTTP.

    Analysts are assigned round-robin onto ``connections`` worker threads
    (each worker drives one :class:`repro.client.RemoteAnalyst` per owned
    analyst — the client is not thread-safe); as in the in-process
    driver, more connections than analysts leaves some workers idle and
    the start barrier counts only the workers that actually launch.

    ``arrival="open"`` turns the replay into an open-loop load test:
    each worker draws Poisson arrivals (exponential gaps, deterministic
    per-worker RNG derived from ``seed``) at ``rate_qps / active``
    calls/sec and measures latency from the *scheduled* arrival, so a
    saturated server shows up as tail latency instead of reduced offered
    load.  Accounting columns come from the server's ``/v1/snapshot``
    delta — directly comparable with :func:`run_throughput` output.
    """
    from repro.client.remote import RemoteAnalyst

    if mode not in MODES:
        raise ReproError(f"unknown mode {mode!r}; choose from {MODES}")
    if arrival not in ARRIVALS:
        raise ReproError(f"unknown arrival {arrival!r}; "
                         f"choose from {ARRIVALS}")
    if arrival == "open" and (rate_qps is None or rate_qps <= 0):
        raise ReproError("open-loop arrival needs rate_qps > 0")
    if connections < 1:
        raise ReproError(f"connections must be >= 1, got {connections}")
    if tokens is None:
        tokens = {a.name: a.name for a in analysts}

    observer = RemoteAnalyst(base_url, token=next(iter(tokens.values()), ""),
                             timeout=timeout)
    before = observer.snapshot()

    assignments: list[list[Analyst]] = [[] for _ in range(connections)]
    for i, analyst in enumerate(analysts):
        assignments[i % connections].append(analyst)
    # The PR 1 barrier/thread-count guard, extended to the remote driver:
    # connections > analysts must not leave the barrier waiting on idle
    # workers (regression-tested in tests/test_loadgen_remote.py).
    active = [owned for owned in assignments if owned]
    barrier = threading.Barrier(len(active))
    errors: list[BaseException] = []
    latencies: list[list[float]] = [[] for _ in active]
    rng = ensure_generator(seed)
    worker_seeds = [int(rng.integers(0, 2**31)) for _ in active]
    per_worker_rate = (rate_qps / len(active)) if rate_qps else 0.0

    def worker(index: int, owned: list[Analyst]) -> None:
        client_by_name = {}
        try:
            timed = latencies[index]
            gaps = ensure_generator(worker_seeds[index])
            for analyst in owned:
                client_by_name[analyst.name] = RemoteAnalyst(
                    base_url, token=tokens[analyst.name], timeout=timeout)
            sessions = {name: client.open_session()
                        for name, client in client_by_name.items()}
            calls: list[tuple[str, list[QueryRequest]]] = []
            for analyst in owned:
                stream = workload.get(analyst.name, [])
                if mode == "single":
                    calls.extend((analyst.name, [r]) for r in stream)
                else:
                    calls.extend(
                        (analyst.name, stream[start:start + batch_size])
                        for start in range(0, len(stream), batch_size))
            barrier.wait()
            started = time.perf_counter()
            scheduled = started
            for name, slice_ in calls:
                client, session = client_by_name[name], sessions[name]
                if arrival == "open":
                    scheduled += float(gaps.exponential(1.0 /
                                                        per_worker_rate))
                    now = time.perf_counter()
                    if scheduled > now:
                        time.sleep(scheduled - now)
                    sent = scheduled
                else:
                    sent = time.perf_counter()
                if mode == "single":
                    request = slice_[0]
                    client.submit(session, request.sql,
                                  accuracy=request.accuracy,
                                  epsilon=request.epsilon)
                else:
                    client.submit_batch(session, slice_)
                timed.append(1e3 * (time.perf_counter() - sent))
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass
        finally:
            for client in client_by_name.values():
                client.close()

    pool = [threading.Thread(target=worker, args=(i, owned), daemon=True)
            for i, owned in enumerate(active)]
    watch = Stopwatch()
    with watch:
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    if errors:
        raise errors[0]

    after = observer.snapshot()
    observer.close()
    timings = [ms for per_worker in latencies for ms in per_worker]
    durable = after.get("durability") or {}
    return _delta_result(
        mode, len(pool), before["service"], before["synopsis_cache"],
        after["service"], after["synopsis_cache"], watch.seconds,
        execution=after.get("execution", "sharded"),
        shards=after.get("shards", 0),
        backend=(after.get("backend") or {}).get("mode", "threaded"),
        timings_ms=timings, transport="remote", arrival=arrival,
        offered_qps=(rate_qps or 0.0),
        durability=(durable.get("fsync", "none") if durable.get("enabled")
                    else "none"),
    )


@dataclass(frozen=True)
class OverloadResult:
    """Outcome of one open-loop overload run against a rate-limited daemon.

    ``admitted`` latencies are measured from the scheduled arrival (they
    include queueing delay); ``refused`` latencies time the 429 round
    trip alone — the "rejections are cheap" half of the overload story.
    ``admitted_workload`` is the per-analyst multiset of requests that
    made it past admission control, so a caller can replay exactly the
    admitted work in process and compare accounting.
    """

    offered_qps: float
    attempted: int
    admitted: int
    rate_limited: int
    seconds: float
    admitted_p50_ms: float
    admitted_p95_ms: float
    refused_p50_ms: float
    refused_p95_ms: float
    service: ThroughputResult
    admitted_workload: dict[str, list[QueryRequest]]

    @property
    def refusal_rate(self) -> float:
        return self.rate_limited / self.attempted if self.attempted else 0.0

    def as_dict(self) -> dict:
        return {
            "offered_qps": self.offered_qps,
            "attempted": self.attempted,
            "admitted": self.admitted,
            "rate_limited": self.rate_limited,
            "refusal_rate": self.refusal_rate,
            "seconds": self.seconds,
            "admitted_p50_ms": self.admitted_p50_ms,
            "admitted_p95_ms": self.admitted_p95_ms,
            "refused_p50_ms": self.refused_p50_ms,
            "refused_p95_ms": self.refused_p95_ms,
            "service": self.service.as_dict(),
        }


def run_overload(base_url: str, analysts: list[Analyst],
                 workload: dict[str, list[QueryRequest]],
                 rate_qps: float, connections: int = 4,
                 tokens: dict[str, str] | None = None,
                 seed: SeedLike = 0,
                 timeout: float = 60.0) -> OverloadResult:
    """Drive open-loop Poisson arrivals at ``rate_qps`` into a daemon
    running admission control, counting 429s instead of failing on them.

    Unlike :func:`run_remote_throughput` (whose workers surface every
    error), a :class:`repro.client.RateLimited` refusal here is an
    *expected* outcome: the worker records the refusal's round-trip
    time and moves to its next scheduled arrival without retrying.
    Every other error still aborts the run.
    """
    from repro.client.remote import RateLimited, RemoteAnalyst

    if rate_qps is None or rate_qps <= 0:
        raise ReproError("overload runs need rate_qps > 0")
    if connections < 1:
        raise ReproError(f"connections must be >= 1, got {connections}")
    if tokens is None:
        tokens = {a.name: a.name for a in analysts}

    observer = RemoteAnalyst(base_url, token=next(iter(tokens.values()), ""),
                             timeout=timeout)
    before = observer.snapshot()

    assignments: list[list[Analyst]] = [[] for _ in range(connections)]
    for i, analyst in enumerate(analysts):
        assignments[i % connections].append(analyst)
    active = [owned for owned in assignments if owned]
    barrier = threading.Barrier(len(active))
    errors: list[BaseException] = []
    admitted_ms: list[list[float]] = [[] for _ in active]
    refused_ms: list[list[float]] = [[] for _ in active]
    admitted_reqs: list[dict[str, list[QueryRequest]]] = [
        {} for _ in active]
    rng = ensure_generator(seed)
    worker_seeds = [int(rng.integers(0, 2**31)) for _ in active]
    per_worker_rate = rate_qps / len(active)

    def worker(index: int, owned: list[Analyst]) -> None:
        client_by_name = {}
        try:
            gaps = ensure_generator(worker_seeds[index])
            for analyst in owned:
                # retry_rate_limited stays 0: the whole point is to
                # observe the refusals, not to sleep them away.
                client_by_name[analyst.name] = RemoteAnalyst(
                    base_url, token=tokens[analyst.name], timeout=timeout)
            sessions = {name: client.open_session()
                        for name, client in client_by_name.items()}
            calls = [(analyst.name, request)
                     for analyst in owned
                     for request in workload.get(analyst.name, [])]
            barrier.wait()
            scheduled = time.perf_counter()
            for name, request in calls:
                client, session = client_by_name[name], sessions[name]
                scheduled += float(gaps.exponential(1.0 / per_worker_rate))
                now = time.perf_counter()
                if scheduled > now:
                    time.sleep(scheduled - now)
                try:
                    client.submit(session, request.sql,
                                  accuracy=request.accuracy,
                                  epsilon=request.epsilon)
                except RateLimited:
                    # Cheap-refusal latency: the 429 round trip itself,
                    # not the (deliberate) queueing delay before it.
                    refused_ms[index].append(
                        1e3 * (time.perf_counter() - max(scheduled, now)))
                else:
                    admitted_ms[index].append(
                        1e3 * (time.perf_counter() - scheduled))
                    admitted_reqs[index].setdefault(name, []).append(request)
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass
        finally:
            for client in client_by_name.values():
                client.close()

    pool = [threading.Thread(target=worker, args=(i, owned), daemon=True)
            for i, owned in enumerate(active)]
    watch = Stopwatch()
    with watch:
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    if errors:
        raise errors[0]

    after = observer.snapshot()
    observer.close()
    admitted_all = [ms for per in admitted_ms for ms in per]
    refused_all = [ms for per in refused_ms for ms in per]
    durable = after.get("durability") or {}
    service_result = _delta_result(
        "single", len(pool), before["service"], before["synopsis_cache"],
        after["service"], after["synopsis_cache"], watch.seconds,
        execution=after.get("execution", "sharded"),
        shards=after.get("shards", 0),
        backend=(after.get("backend") or {}).get("mode", "threaded"),
        timings_ms=admitted_all, transport="remote", arrival="open",
        offered_qps=rate_qps,
        durability=(durable.get("fsync", "none") if durable.get("enabled")
                    else "none"),
    )
    merged: dict[str, list[QueryRequest]] = {}
    for per_worker in admitted_reqs:
        for name, requests in per_worker.items():
            merged.setdefault(name, []).extend(requests)
    return OverloadResult(
        offered_qps=rate_qps,
        attempted=len(admitted_all) + len(refused_all),
        admitted=len(admitted_all),
        rate_limited=len(refused_all),
        seconds=watch.seconds,
        admitted_p50_ms=latency_percentile(admitted_all, 0.50),
        admitted_p95_ms=latency_percentile(admitted_all, 0.95),
        refused_p50_ms=latency_percentile(refused_all, 0.50),
        refused_p95_ms=latency_percentile(refused_all, 0.95),
        service=service_result,
        admitted_workload=merged,
    )


def format_throughput(results: list[ThroughputResult],
                      title: str = "service throughput") -> str:
    """Text table comparing load-generation runs (any transport)."""
    header = (f"{'mode':>8s} {'via':>7s} {'exec':>8s} {'back':>8s} "
              f"{'dur':>7s} {'thr':>4s} "
              f"{'queries':>8s} {'ans':>7s} {'rej':>6s} {'q/s':>9s} "
              f"{'hit%':>6s} {'fresh':>6s} {'eps':>8s} "
              f"{'p50ms':>7s} {'p95ms':>7s}")
    lines = [f"== {title} ==", header, "-" * len(header)]
    for r in results:
        via = r.transport if r.arrival == "closed" else "open"
        lines.append(
            f"{r.mode:>8s} {via:>7s} {r.execution:>8s} {r.backend:>8s} "
            f"{r.durability:>7s} {r.threads:>4d} "
            f"{r.total_queries:>8d} "
            f"{r.answered:>7d} {r.rejected:>6d} {r.queries_per_second:>9.1f} "
            f"{100.0 * r.answer_cache_hit_rate:>5.1f}% {r.fresh_releases:>6d} "
            f"{r.total_epsilon_spent:>8.3f} "
            f"{r.latency_p50_ms:>7.2f} {r.latency_p95_ms:>7.2f}")
    return "\n".join(lines)


__all__ = [
    "ARRIVALS",
    "MODES",
    "OverloadResult",
    "ThroughputResult",
    "bfs_style_queries",
    "build_disjoint_workload",
    "build_mixed_workload",
    "disjoint_view_attribute_sets",
    "format_throughput",
    "latency_percentile",
    "register_disjoint_views",
    "run_overload",
    "run_remote_throughput",
    "run_sequential_replay",
    "run_throughput",
]
