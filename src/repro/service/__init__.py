"""Concurrent multi-analyst serving layer over the DProvDB engine.

* :mod:`repro.service.session` — sessions and the request/response envelope.
* :mod:`repro.service.planner` — batched planning: group queries by target
  view and run the strictest accuracy first so one synopsis refresh answers
  many queries.
* :mod:`repro.service.sharding` — stable view→shard routing and the worker
  pool that executes a batch's per-view groups in parallel.
* :mod:`repro.service.cache` — LRU-bounded synopsis storage with hit/miss
  statistics (internally locked for concurrent probes).
* :mod:`repro.service.service` — :class:`QueryService`: the thread-safe
  front-end.  Sharded execution is the default — no global critical
  section; atomic check-and-charge lives in the provenance table and
  synopsis consistency in the engine's per-view sections — with
  ``execution="global"`` as the serialised baseline.
* :mod:`repro.service.executor` — engine-level execution functions shared
  by every backend (one code path for threaded and mp).
* :mod:`repro.service.mp_backend` — the multiprocessing backend: forked
  view-shard workers, shared-memory synopses, parent-brokered accounting
  (``QueryService(backend="mp")``).
* :mod:`repro.service.loadgen` — mixed and disjoint-view load generation
  and the throughput harness behind ``python -m repro bench-service``.
"""

from repro.service.cache import LruSynopsisStore
from repro.service.loadgen import (
    ThroughputResult,
    build_disjoint_workload,
    build_mixed_workload,
    disjoint_view_attribute_sets,
    format_throughput,
    register_disjoint_views,
    run_remote_throughput,
    run_throughput,
)
from repro.service.planner import BatchPlan, PlannedQuery, plan_batch
from repro.service.service import (
    BACKENDS,
    DEFAULT_MAX_CACHED,
    EXECUTION_MODES,
    QueryService,
    ServiceStats,
)
from repro.service.session import QueryRequest, QueryResponse, Session
from repro.service.sharding import DEFAULT_NUM_SHARDS, ShardManager

__all__ = [
    "BACKENDS",
    "BatchPlan",
    "DEFAULT_MAX_CACHED",
    "DEFAULT_NUM_SHARDS",
    "EXECUTION_MODES",
    "LruSynopsisStore",
    "PlannedQuery",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServiceStats",
    "Session",
    "ShardManager",
    "ThroughputResult",
    "build_disjoint_workload",
    "build_mixed_workload",
    "disjoint_view_attribute_sets",
    "format_throughput",
    "plan_batch",
    "register_disjoint_views",
    "run_remote_throughput",
    "run_throughput",
]
