"""Concurrent multi-analyst serving layer over the DProvDB engine.

* :mod:`repro.service.session` — sessions and the request/response envelope.
* :mod:`repro.service.planner` — batched planning: group queries by target
  view and run the strictest accuracy first so one synopsis refresh answers
  many queries.
* :mod:`repro.service.cache` — LRU-bounded synopsis storage with hit/miss
  statistics.
* :mod:`repro.service.service` — :class:`QueryService`: the thread-safe
  front-end (sessions + batching + locking around budget accounting).
* :mod:`repro.service.loadgen` — mixed-workload load generation and the
  throughput harness behind ``python -m repro bench-service``.
"""

from repro.service.cache import LruSynopsisStore
from repro.service.loadgen import (
    ThroughputResult,
    build_mixed_workload,
    format_throughput,
    run_throughput,
)
from repro.service.planner import BatchPlan, PlannedQuery, plan_batch
from repro.service.service import DEFAULT_MAX_CACHED, QueryService, ServiceStats
from repro.service.session import QueryRequest, QueryResponse, Session

__all__ = [
    "BatchPlan",
    "DEFAULT_MAX_CACHED",
    "LruSynopsisStore",
    "PlannedQuery",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServiceStats",
    "Session",
    "ThroughputResult",
    "build_mixed_workload",
    "format_throughput",
    "plan_batch",
    "run_throughput",
]
