"""LRU-bounded synopsis storage for the serving layer.

Evicting a local synopsis never corrupts accounting — the provenance table
is the ledger and constraints keep holding — but it is not free either: a
later equivalent request must *re-derive* the synopsis, which is a fresh
release (one delta-ledger slot, and under the vanilla mechanism a full
re-charge of the query's epsilon; under the additive mechanism a re-charge
of at most the gap between the analyst's provenance entry and the view's
global budget — zero only while the entry is already at that cap).  Size
the bound to the working set — roughly analysts x hot views — or pass
``max_local=None`` for an unbounded store that still tracks statistics.
Global synopses are *never* evicted: they carry the curator's realised
budget per view, which the additive mechanism's constraint checks and
combination steps depend on, and there is exactly one per registered view
so their footprint is bounded by the schema.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.synopsis import Synopsis, SynopsisStore
from repro.exceptions import ReproError
from repro.metrics.runtime import CacheStats


class LruSynopsisStore(SynopsisStore):
    """A :class:`SynopsisStore` whose local synopses form an LRU cache.

    Parameters
    ----------
    max_local:
        Maximum number of (analyst, view) local synopses kept; the least
        recently *used* (looked up or stored) entry is evicted first.
        ``None`` disables eviction (statistics only).
    stats:
        Optional shared :class:`CacheStats`; one is created if omitted.
        Answer-path lookup decisions (via :meth:`note_lookup`) and
        evictions are recorded there; raw ``local_synopsis`` probes are
        not, so ``hit_rate`` measures serving effectiveness.

    The recency list and eviction loop take an internal lock: under the
    sharded service, probes and stores arrive concurrently from many
    worker threads (an ``OrderedDict`` re-link is not atomic), and the
    eviction decision must see a consistent size.  ``CacheStats`` is
    already thread-safe on its own.
    """

    def __init__(self, max_local: int | None,
                 stats: CacheStats | None = None) -> None:
        if max_local is not None and max_local < 1:
            raise ReproError(f"max_local must be >= 1 or None, got {max_local}")
        super().__init__()
        self._cache_lock = threading.RLock()
        self._local: OrderedDict[tuple[str, str], Synopsis] = OrderedDict()
        self.max_local = max_local
        self.stats = stats if stats is not None else CacheStats()

    def local_synopsis(self, analyst: str, view: str) -> Synopsis | None:
        with self._cache_lock:
            synopsis = self._local.get((analyst, view))
            if synopsis is not None:
                self._local.move_to_end((analyst, view))
            return synopsis

    def note_lookup(self, hit: bool) -> None:
        if hit:
            self.stats.record_hit()
        else:
            self.stats.record_miss()

    def put_local(self, synopsis: Synopsis) -> None:
        with self._cache_lock:
            super().put_local(synopsis)
            self._local.move_to_end((synopsis.analyst, synopsis.view_name))
            while self.max_local is not None \
                    and len(self._local) > self.max_local:
                evicted_key, _ = self._local.popitem(last=False)
                # Evictions version the entry too: the fast lane's
                # generation check must notice an entry vanishing
                # mid-read, not only one being replaced.
                self._bump_local_generation(*evicted_key)
                self.stats.record_eviction()


__all__ = ["LruSynopsisStore"]
