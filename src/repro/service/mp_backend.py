"""Multiprocessing shard backend: fork workers, shared-memory synopses.

The threaded service scales until the GIL does: every numpy transform,
noise draw, and SQL parse of every shard thread serialises on one
interpreter lock.  ``QueryService(backend="mp")`` replaces the shard
*thread* pool with a pool of forked **worker processes**:

* each worker owns a disjoint subset of the views (stable crc32
  routing, the same function the thread backend uses), holds its own
  synopsis store, and runs the exact executor code path
  (:mod:`repro.service.executor`) the threaded backend runs;
* the exact view materialisations and a per-view synopsis slab live in
  :mod:`multiprocessing.shared_memory`, so workers answer from
  zero-copy numpy arrays and publish synopsis values back to the
  parent without pickling a single histogram;
* **all accounting stays in the parent.**  Workers never charge the
  authoritative provenance table: each conversation ships the worker an
  authoritative snapshot of the cross-shard tallies (analyst row sum,
  table totals, delta-ledger count), the worker runs every budget check
  against its synced local *mirror* and records an ordered op list
  (reserve verdicts, rollbacks), and the parent **replays every op
  itself** against the real
  :meth:`repro.core.provenance.ProvenanceTable.reserve` (same checks,
  same row -> column -> totals lock order, same ``on_commit``
  durability hook at commit) when the end-of-batch ``done`` message
  arrives.  One accounting domain, one ledger — and zero per-charge
  pipe round-trips: all charge traffic for a batch rides the two
  messages the batch already costs (the dispatch down, the ``done``
  up).

Deferred settlement is the crash-safety hinge: the parent charges
nothing until the worker's ``done`` arrives, then replays the ops under
its state lock, verifying the worker's accept/reject verdict (and the
rejection reason) op by op, and finally commits in the worker's commit
order (outside all table locks, firing the durability hook exactly as
the threaded path does).  A worker that dies mid-batch therefore never
charged anything; the parent fails the batch's queries with a tagged
error and forks a replacement worker from its own authoritative state.
A verdict mismatch — possible only under concurrent same-analyst
traffic across *different* shards, where the snapshot a worker checked
against has moved — is handled the same way: every replayed charge of
that batch is unwound and the worker is respawned fresh.  No budget is
ever charged for an answer nobody received.

Determinism: with ``noise_streams="per_view"`` (see
:data:`repro.core.mechanism.NOISE_STREAMS`) each view's noise sequence
depends only on that view's own release order, which a single worker
owns — so an mp run is bit-identical to a sequential threaded replay of
the same workload (the ``bench-service --backend mp
--compare-threaded`` gate).  Replacement workers bump their stream
incarnation so a restarted process never replays noise its predecessor
already published.

Scope: the backend serves the additive mechanism (the paper's primary
contribution and the serving hot path) without ``combine_local``;
construction rejects anything else.  Views or analysts registered after
the workers fork fail cleanly at dispatch with a restart hint.
"""

from __future__ import annotations

import gc
import itertools
import multiprocessing
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.core.compile_cache import CompiledStatement, StatementCache
from repro.core.engine import Answer
from repro.core.synopsis import Synopsis
from repro.db.sql.unparse import to_sql
from repro.exceptions import QueryRejected, ReproError, ServiceClosed
from repro.metrics import tracing
from repro.metrics.tracing import Trace
from repro.service.cache import LruSynopsisStore
from repro.service.executor import execute_planned_group
from repro.service.planner import PlannedQuery, _plan_one, plan_batch
from repro.service.session import Lineage, QueryRequest, QueryResponse

#: Default worker count: enough to cover the bench's four-analyst view
#: spread without forking a process per core on large hosts.
DEFAULT_MP_WORKERS = max(1, min(4, os.cpu_count() or 1))

#: Stable view -> shard routing (identical to ShardManager.shard_of so
#: the two backends agree on what "a shard" is).
def shard_of(view_name: str, num_shards: int) -> int:
    import zlib

    return zlib.crc32(view_name.encode("utf-8")) % num_shards


def _pack_answer(answer: Answer) -> tuple:
    return (answer.analyst, answer.value, answer.epsilon_charged,
            answer.view_name, answer.per_bin_variance,
            answer.answer_variance, answer.cache_hit)


def _pack_lineage(lineage: Lineage | None, worker: int,
                  incarnation: int) -> tuple | None:
    """Flatten a lineage record, stamping the computing process's
    identity — the one lineage fact only the worker knows."""
    if lineage is None:
        return None
    return (lineage.view, lineage.source, lineage.epsilon,
            lineage.mechanism, lineage.composition,
            lineage.synopsis_generation, lineage.ledger_seq,
            worker, incarnation, lineage.trace_id)


def _unpack_lineage(packed: tuple | None) -> Lineage | None:
    if packed is None:
        return None
    return Lineage(view=packed[0], source=packed[1], epsilon=packed[2],
                   mechanism=packed[3], composition=packed[4],
                   synopsis_generation=packed[5], ledger_seq=packed[6],
                   worker=packed[7], incarnation=packed[8],
                   trace_id=packed[9])


def _pack_response(response: QueryResponse, worker: int,
                   incarnation: int) -> tuple:
    """Flatten one response to plain tuples for the ``done`` payload.

    Pickling the nested ``QueryResponse``/``Answer`` dataclasses costs
    roughly 20x what the equivalent tuples do (measured: per-instance
    class dispatch plus attribute dicts), and the done payload carries
    one per query — on a single-CPU host that serialisation tax is a
    visible slice of the whole mp overhead budget.
    """
    lineage = _pack_lineage(response.lineage, worker, incarnation)
    if response.answer is not None:
        return (response.index, 0, _pack_answer(response.answer), lineage)
    if response.groups is not None:
        return (response.index, 1, tuple(
            (key, _pack_answer(answer)) for key, answer in response.groups),
            lineage)
    return (response.index, 2, response.error, response.rejected, lineage)


def _unpack_response(packed: tuple) -> QueryResponse:
    index, shape = packed[0], packed[1]
    if shape == 0:
        return QueryResponse(index, answer=Answer(*packed[2]),
                             lineage=_unpack_lineage(packed[3]))
    if shape == 1:
        return QueryResponse(index, groups=tuple(
            (key, Answer(*fields)) for key, fields in packed[2]),
            lineage=_unpack_lineage(packed[3]))
    return QueryResponse(index, error=packed[2], rejected=packed[3],
                         lineage=_unpack_lineage(packed[4]))


class _Shard:
    """Parent-side handle for one worker process."""

    __slots__ = ("index", "lock", "conn", "process", "incarnation",
                 "sent_ids")

    def __init__(self, index: int) -> None:
        self.index = index
        #: Serialises conversations: one batch talks to a worker at a
        #: time, and the holder does all pipe I/O for the shard.  A
        #: conversation only ever holds its *own* shard's lock, so
        #: shard dispatch is deadlock-free by construction.
        self.lock = threading.Lock()
        self.conn = None
        self.process = None
        self.incarnation = 0
        #: Statement ids already shipped to the live worker process
        #: (reset on respawn — a fresh fork knows nothing).
        self.sent_ids: set[int] = set()


class _BrokeredReservation:
    """Worker-side face of one deferred-settlement provenance charge.

    Duck-types :class:`repro.core.provenance.Reservation` for the
    mechanism code: context manager, :meth:`commit`, :meth:`rollback`,
    ``state``.  ``commit`` finalises the worker's local mirror charge
    and records the cid for the end-of-batch ``done`` message — the
    parent's authoritative reserve-and-commit (and the durability hook)
    happens there.  ``rollback`` undoes the mirror and appends a
    rollback op, *in order*: budget freed by a rollback may be what
    lets a later reserve in the same batch pass, so the parent must
    replay the two in the order the worker decided them.
    """

    __slots__ = ("_proxy", "_cid", "_local")

    def __init__(self, proxy: "_WorkerProvenance", cid: int, local) -> None:
        self._proxy = proxy
        self._cid = cid
        self._local = local

    @property
    def state(self) -> str:
        return self._local.state

    def commit(self) -> None:
        if self._local.state == "committed":
            return
        self._local.commit()
        self._proxy.committed.append(self._cid)

    def rollback(self) -> None:
        if self._local.state == "rolled_back":
            return
        self._local.rollback()
        self._proxy.ops.append(("rollback", self._cid))

    def __enter__(self) -> "_BrokeredReservation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._local.state == "pending":
            self.rollback()


class _WorkerProvenance:
    """Provenance proxy installed in workers: charges settle in the parent.

    Reads (``get``, totals, ``check``) serve from the worker's
    inherited table copy — exact for the worker's own views, since one
    worker owns all traffic on a view's column, and exact for the
    cross-shard tallies too, because every conversation starts by
    syncing them from the parent's authoritative snapshot
    (:meth:`_Worker._apply_sync`).  ``reserve`` therefore runs the real
    check-and-charge against the local mirror *immediately* — no pipe
    round-trip — and records the op (arguments plus verdict) for the
    end-of-batch ``done`` payload, where the parent replays it against
    the authoritative table and verifies the verdict matches.
    """

    def __init__(self, inner, conn) -> None:
        self._inner = inner
        self.conn = conn
        self._cids = itertools.count(1)
        #: cids committed this batch, in commit order (shipped in
        #: ``done``; the parent commits in exactly this order).
        self.committed: list[int] = []
        #: Ordered charge ops this batch: ``("reserve", cid, analyst,
        #: view, epsilon, column_mode, meta, accepted, reason,
        #: constraint)`` and ``("rollback", cid)``.
        self.ops: list[tuple] = []

    def reserve(self, analyst: str, view: str, epsilon: float, constraints, *,
                column_mode: str = "sum", meta=None) -> _BrokeredReservation:
        cid = next(self._cids)
        meta_copy = dict(meta) if meta else None
        try:
            local = self._inner.reserve(analyst, view, epsilon, constraints,
                                        column_mode=column_mode, meta=meta)
        except QueryRejected as exc:
            # Record the rejection too: the parent replays it to confirm
            # the authoritative table agrees (reason and all) — a silent
            # drop would let mirror drift go unnoticed.
            self.ops.append(("reserve", cid, analyst, view, epsilon,
                             column_mode, meta_copy, False,
                             exc.reason, exc.constraint))
            raise
        self.ops.append(("reserve", cid, analyst, view, epsilon,
                         column_mode, meta_copy, True, None, None))
        return _BrokeredReservation(self, cid, local)

    def add(self, *args, **kwargs):
        raise ReproError(
            "direct provenance adds are not brokered; the mp backend "
            "only serves the additive mechanism's reserve/commit path")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _SlabRecorder:
    """Worker-side ``SynopsisStore.on_put`` hook.

    Writes every stored synopsis's values into the view's shared-memory
    slab row (row 0 = global, row 1+i = analyst i) and upserts a
    metadata record keyed by (view, analyst) — the parent rebuilds its
    mirror store from the *final* state per key at batch end, which is
    all it ever reads.
    """

    def __init__(self, slabs: dict[str, np.ndarray],
                 analyst_rows: dict[str, int]) -> None:
        self._slabs = slabs
        self._analyst_rows = analyst_rows
        self.records: dict[tuple, dict] = {}
        self.touched: set[str] = set()

    def begin(self) -> None:
        self.records = {}
        self.touched = set()

    def on_put(self, synopsis: Synopsis) -> None:
        row = 0 if synopsis.analyst is None \
            else self._analyst_rows[synopsis.analyst]
        self._slabs[synopsis.view_name][row, :] = synopsis.values
        self.touched.add(synopsis.view_name)
        self.records[(synopsis.view_name, synopsis.analyst)] = {
            "view": synopsis.view_name, "analyst": synopsis.analyst,
            "epsilon": synopsis.epsilon, "delta": synopsis.delta,
            "variance": synopsis.variance, "row": row,
        }


def _reinit_worker_state(service) -> None:
    """Re-found every lock a forked worker inherited, and detach hooks.

    Fork copies the parent mid-flight: another thread may hold any lock
    (fork pauses threads at bytecode boundaries, so Python objects are
    structurally consistent but locks stay "held" by ghosts).  Every
    lock the worker's execution path can touch gets a fresh instance;
    the compiled-statement cache is replaced wholesale (a planner
    thread may have been inside its critical section); durability and
    delegation hooks are severed — **all charging happens in the
    parent**, the worker must never journal or fsync anything.
    """
    engine = service.engine
    prov = engine.provenance
    prov._row_locks = {name: threading.RLock() for name in prov._row_locks}
    prov._col_locks = {name: threading.RLock() for name in prov._col_locks}
    prov._totals_lock = threading.RLock()
    prov._structure_lock = threading.RLock()
    prov.on_commit = None
    engine._view_locks = {name: threading.RLock()
                          for name in engine._view_locks}
    engine._view_locks_guard = threading.Lock()
    engine._fast_lane_lock = threading.Lock()
    engine.statement_cache = StatementCache(
        engine.statement_cache.max_entries)
    registry = engine.registry
    registry._materialize_lock = threading.Lock()
    registry._route_lock = threading.Lock()
    registry._route_cache = {}
    mech = engine.mechanism
    mech._ledger_lock = threading.Lock()
    store = mech.store
    if isinstance(store, LruSynopsisStore):
        store._cache_lock = threading.RLock()
        store.stats._lock = threading.Lock()
    engine.log._lock = threading.Lock()
    engine.delegations.on_event = None
    engine.delegations._lock = threading.Lock()
    service.durability = None


class _Worker:
    """The forked worker process's event loop."""

    def __init__(self, backend: "MpBackend", index: int, conn,
                 incarnation: int) -> None:
        self.backend = backend
        self.index = index
        self.conn = conn
        self.engine = backend.service.engine
        self.recorder = _SlabRecorder(backend._slabs, backend._analyst_rows)
        self.sql_by_id: dict[int, str] = {}
        self.crash_after: int | None = None
        self.incarnation = incarnation

    def setup(self) -> None:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # Close every inherited parent-end pipe (ours included — we
        # keep only the child end passed to us).  Leaving another
        # shard's child-end copy open would mask that worker's death
        # from the parent's EOF detection.
        for shard in self.backend._shards:
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover - best effort
                    pass
        _reinit_worker_state(self.backend.service)
        mech = self.engine.mechanism
        mech.set_stream_incarnation(self.incarnation)
        self.proxy = _WorkerProvenance(self.engine.provenance, self.conn)
        self.engine.provenance = self.proxy
        mech.provenance = self.proxy
        mech.store.on_put = self.recorder.on_put
        # Everything inherited from the fork is effectively immutable
        # reference data for this process; freezing it keeps the cyclic
        # GC from ever writing into those objects' headers, which would
        # copy-on-write whole inherited pages for nothing.
        gc.collect()
        gc.freeze()

    def run(self) -> None:
        self.setup()
        try:
            while True:
                try:
                    msg = self.conn.recv()
                except (EOFError, OSError):
                    break
                kind = msg[0]
                if kind == "batch":
                    self.serve_batch(msg[1], msg[2], msg[3], msg[4], msg[5],
                                     msg[6])
                elif kind == "raw":
                    self.serve_raw(msg[1], msg[2], msg[3], msg[4], msg[5])
                elif kind == "ping":
                    self.conn.send(("pong", os.getpid()))
                elif kind == "crash_after":
                    self.crash_after = msg[1]
                elif kind == "stop":
                    break
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass

    # -- batch serving -------------------------------------------------------
    def _on_item(self, _done: int) -> None:
        if self.crash_after is None:
            return
        self.crash_after -= 1
        if self.crash_after <= 0:
            # Fault injection: die exactly as a segfaulted or OOM-killed
            # worker would — no goodbye, no flush.
            os.kill(os.getpid(), signal.SIGKILL)

    def _seed_plans(self, new_plans: dict) -> None:
        """Adopt the parent's compiled plans into the local statement cache.

        The parent already parsed, routed, and compiled every statement
        while planning the batch; re-deriving the same weight vectors
        here would double the whole compile cost of the serving path
        (the single biggest mp overhead on a 1-CPU host).  Each record
        carries the compiled parts minus the view object — views hold
        the shared-memory materialisations and must never ride the pipe
        — so the entry is rebuilt around *this* process's view instance.
        Compilation is deterministic, so the adopted entry is
        bit-identical to what a local compile would have produced; a
        later cache eviction merely makes the worker recompile.
        """
        cache = self.engine.statement_cache
        registry = self.engine.registry
        for sid, parts in new_plans.items():
            (kind, view_name, statement, query, group_parts, avg_parts,
             strictest) = parts
            entry = CompiledStatement(statement, kind,
                                      registry.view(view_name), query=query,
                                      group_parts=group_parts,
                                      avg_parts=avg_parts,
                                      strictest=strictest)
            cache.put(self.sql_by_id[sid], entry, epoch=cache.epoch)

    def _apply_sync(self, analyst: str, sync: tuple) -> None:
        """Adopt the parent's authoritative cross-shard tallies.

        A worker's mirror is exact for its own views' column sums (it
        performs every charge on them, and the parent replays the same
        ops), but the *analyst row sum*, the *table totals*, and the
        *delta-ledger count* move with every other shard's traffic too.
        The parent snapshots them under its state lock at dispatch; the
        worker overwrites its mirror before running the batch, so every
        budget check it performs is against the very tallies the
        parent's replay will check against — which is what makes the
        local verdict authoritative in the sequential case.
        """
        row_sum, table_sum, table_max_sum, release_count = sync
        inner = self.proxy._inner
        inner._row_sum[analyst] = row_sum
        inner._table_sum = table_sum
        inner._table_max_sum = table_max_sum
        mech = self.engine.mechanism
        if release_count:
            mech._release_counts[analyst] = release_count
        else:
            mech._release_counts.pop(analyst, None)

    def _begin_batch(self) -> tuple:
        """Reset per-batch collectors; returns the counter marks the
        end-of-batch payload diffs against."""
        engine = self.engine
        self.proxy.committed = []
        self.proxy.ops = []
        self.recorder.begin()
        stats = getattr(engine.mechanism.store, "stats", None)
        return (len(engine.log),
                (engine._fast_lane_hits, engine._fast_lane_misses),
                stats,
                (stats.hits, stats.misses) if stats is not None else (0, 0))

    def _run_group(self, analyst: str, view_name: str | None,
                   items: list[PlannedQuery], responses: list) -> None:
        try:
            execute_planned_group(self.engine, analyst, view_name, items,
                                  responses, on_item=self._on_item)
        except Exception as exc:  # noqa: BLE001 - worker must answer
            for item in items:
                if responses[item.index] is None:
                    responses[item.index] = QueryResponse(
                        item.index, error=str(exc))

    def _batch_trace(self, trace_id: str | None) -> Trace | None:
        """A worker-local trace for one conversation (``None`` when the
        parent sent no id).  The worker's spans are relative to its own
        clock origin; the parent grafts the export under its dispatch
        span, re-basing the offsets (see :meth:`Trace.graft`)."""
        return Trace(trace_id) if trace_id is not None else None

    def serve_batch(self, analyst: str, groups, new_sql: dict,
                    new_plans: dict, sync: tuple,
                    trace_id: str | None) -> None:
        self.sql_by_id.update(new_sql)
        self._seed_plans(new_plans)
        self._apply_sync(analyst, sync)
        engine = self.engine
        top = max(entry[0] for _, entries in groups for entry in entries)
        responses: list[QueryResponse | None] = [None] * (top + 1)
        trace = self._batch_trace(trace_id)
        marks = self._begin_batch()
        with tracing.activate(trace), \
                tracing.span("worker.serve", worker=self.index,
                             incarnation=self.incarnation):
            for view_name, entries in groups:
                items: list[PlannedQuery] = []
                for index, sid, accuracy, epsilon in entries:
                    request = QueryRequest(self.sql_by_id[sid],
                                           accuracy=accuracy,
                                           epsilon=epsilon)
                    items.append(_plan_one(engine, index, request))
                self._run_group(analyst, view_name, items, responses)
        self._send_done(marks, responses, trace)

    def serve_raw(self, analyst: str, entries, new_sql: dict, sync: tuple,
                  trace_id: str | None) -> None:
        """Single-worker fast path: the *worker* runs the batch planner.

        With one worker every view routes to this process, so the parent
        forwards the raw requests instead of planning and shipping
        compiled plans — system-wide, each statement is parsed, routed,
        and compiled exactly once, same as the threaded backend.  The
        planner and executor are the very code the parent would have
        run, so group order, per-view strictest-first order, and hence
        the per-view noise streams are bit-identical to a sequential
        threaded replay.
        """
        self.sql_by_id.update(new_sql)
        self._apply_sync(analyst, sync)
        engine = self.engine
        batch = [QueryRequest(self.sql_by_id[sid],
                              accuracy=accuracy, epsilon=epsilon)
                 for _index, sid, accuracy, epsilon in entries]
        trace = self._batch_trace(trace_id)
        marks = self._begin_batch()
        with tracing.activate(trace), \
                tracing.span("worker.serve", worker=self.index,
                             incarnation=self.incarnation):
            with tracing.span("plan", queries=len(batch)):
                plan = plan_batch(engine, batch)
            responses: list[QueryResponse | None] = [None] * len(batch)
            groups: dict[str | None, list[PlannedQuery]] = {}
            for item in plan.ordered:
                groups.setdefault(item.view_name, []).append(item)
            for view_name, items in groups.items():
                self._run_group(analyst, view_name, items, responses)
        self._send_done(marks, responses, trace)

    def _send_done(self, marks: tuple, responses: list,
                   trace: Trace | None = None) -> None:
        engine = self.engine
        mech = engine.mechanism
        log_base, fast0, stats, cache0 = marks
        touched = self.recorder.touched
        payload = {
            "responses": [_pack_response(r, self.index, self.incarnation)
                          for r in responses if r is not None],
            "spans": trace.export() if trace is not None else None,
            "ops": list(self.proxy.ops),
            "committed": list(self.proxy.committed),
            "synopses": list(self.recorder.records.values()),
            "generation": {v: g for v, g in mech._generation.items()
                           if v in touched},
            "last_combination": {v: r for v, r
                                 in mech._last_combination.items()
                                 if v in touched},
            "local_meta": {k: m for k, m in mech._local_meta.items()
                           if k[1] in touched},
            "fast_lane": (engine._fast_lane_hits - fast0[0],
                          engine._fast_lane_misses - fast0[1]),
            "cache": ((stats.hits - cache0[0], stats.misses - cache0[1])
                      if stats is not None else (0, 0)),
            "log": [(e.analyst, e.sql, e.view_name, e.epsilon_charged,
                     e.cache_hit, e.answered, e.rejection_reason,
                     e.delegated_from)
                    for e in list(engine.log)[log_base:]],
        }
        self.conn.send(("done", payload))


def _worker_main(backend: "MpBackend", index: int, conn,
                 incarnation: int) -> None:
    _Worker(backend, index, conn, incarnation).run()


class MpBackend:
    """Parent-side orchestrator of the worker pool (see module docstring)."""

    def __init__(self, service, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        engine = service.engine
        if engine.mechanism.name != "additive":
            raise ReproError(
                "the mp backend serves the additive mechanism only "
                f"(got {engine.mechanism.name!r}); use backend='threaded'")
        if getattr(engine.mechanism, "combine_local", False):
            raise ReproError(
                "the mp backend does not support combine_local; "
                "use backend='threaded'")
        if engine.mechanism.noise_streams != "per_view":
            raise ReproError(
                "the mp backend needs per-view noise streams for "
                "deterministic sharded draws; build the engine with "
                "noise_streams='per_view'")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ReproError(
                "the mp backend needs the 'fork' start method "
                "(unavailable on this platform); use backend='threaded'")
        self.service = service
        self.num_workers = DEFAULT_MP_WORKERS if workers is None else workers
        self._shards: list[_Shard] = []
        self._slabs: dict[str, np.ndarray] = {}
        self._analyst_rows: dict[str, int] = {}
        self._shm: list[SharedMemory] = []
        self._ctx = multiprocessing.get_context("fork")
        #: Quiesces every parent-side mutation a fork must not bisect:
        #: charge application, mirror updates, and (re)spawns all run
        #: under it, so a forked child never inherits a logically torn
        #: provenance table or synopsis store.
        self._state_lock = threading.Lock()
        self._startup_lock = threading.Lock()
        self._sql_lock = threading.Lock()
        self._sql_ids: dict[str, int] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()
        self._started = False
        self._closed = False
        # Telemetry counters (read without the lock; monotonic ints).
        self.restarts = 0
        self.crashes = 0
        self.brokered_charges = 0
        self.charge_rejections = 0
        self.conversations = 0
        #: Standalone charge-traffic pipe messages.  Deferred settlement
        #: coalesces *all* of a batch's reserve/rollback traffic into the
        #: ``done`` payload, so this stays 0 — the bench's mp-comparison
        #: gate asserts it stays strictly below ``brokered_charges``
        #: (one-message-per-charge is the regression this guards).
        self.charge_messages = 0
        #: Batches whose replayed op verdicts diverged from the
        #: authoritative ledger (concurrent same-analyst cross-shard
        #: traffic); every such batch is fully unwound and its worker
        #: respawned.
        self.charge_mismatches = 0

    # -- lifecycle -----------------------------------------------------------
    def ensure_started(self) -> None:
        """Materialise views into shared memory and fork the pool (once).

        Called lazily on first dispatch and eagerly by ``repro serve``
        (pre-fork at startup): forking must happen *after* durability
        recovery rebuilt the parent state, so workers inherit it.
        """
        if self._started:
            return
        with self._startup_lock:
            if self._started:
                return
            if self._closed:
                raise ServiceClosed("mp backend is closed")
            engine = self.service.engine
            engine.setup()
            registry = engine.registry
            analysts = list(engine.provenance.analysts)
            self._analyst_rows = {name: i + 1
                                  for i, name in enumerate(analysts)}
            for name in registry.view_names:
                exact = np.ascontiguousarray(registry.exact_values(name))
                shm = SharedMemory(create=True, size=max(1, exact.nbytes))
                arr = np.ndarray(exact.shape, dtype=exact.dtype,
                                 buffer=shm.buf)
                arr[:] = exact
                arr.flags.writeable = False
                registry._exact[name] = arr
                self._shm.append(shm)
                rows = len(analysts) + 1
                slab = SharedMemory(create=True,
                                    size=max(8, rows * exact.size * 8))
                slab_arr = np.ndarray((rows, exact.size), dtype=np.float64,
                                      buffer=slab.buf)
                slab_arr.fill(0.0)
                self._slabs[name] = slab_arr
                self._shm.append(slab)
            # Raw-forwarding (single worker) is sound only while the
            # worker's inherited view catalog matches the parent's; a
            # later registration bumps this generation and disables it.
            self._fork_route_generation = registry._route_generation
            with self._state_lock:
                for k in range(self.num_workers):
                    shard = _Shard(k)
                    self._shards.append(shard)
                    self._spawn(shard)
            self._started = True

    def _spawn(self, shard: _Shard) -> None:
        """Fork one worker (callers hold ``_state_lock``; on respawn the
        shard's conversation lock too)."""
        parent_conn, child_conn = self._ctx.Pipe()
        shard.conn = parent_conn
        shard.sent_ids = set()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self, shard.index, child_conn, shard.incarnation),
            daemon=True, name=f"repro-mp-{shard.index}")
        process.start()
        child_conn.close()
        shard.process = process

    def _respawn(self, shard: _Shard) -> None:
        with self._state_lock:
            if self._closed:
                return
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
            if shard.process is not None:
                shard.process.join(timeout=5)
            shard.incarnation += 1
            self._spawn(shard)
            self.restarts += 1

    def close(self) -> None:
        """Stop workers, release shared memory (idempotent)."""
        self._closed = True
        with self._startup_lock:
            for shard in self._shards:
                with shard.lock:
                    if shard.conn is not None:
                        try:
                            shard.conn.send(("stop",))
                        except (OSError, BrokenPipeError, ValueError):
                            pass
            for shard in self._shards:
                if shard.process is not None:
                    shard.process.join(timeout=5)
                    if shard.process.is_alive():  # pragma: no cover
                        shard.process.terminate()
                        shard.process.join(timeout=1)
                if shard.conn is not None:
                    try:
                        shard.conn.close()
                    except OSError:
                        pass
            with self._pool_guard:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=True)
            # Detach every numpy view of the shared maps before closing
            # them (a mapped buffer with live exports cannot close).
            registry = self.service.engine.registry
            for name, values in list(registry._exact.items()):
                if any(values.base is not None and values.size * 8 <= shm.size
                       for shm in self._shm):
                    registry._exact[name] = np.array(values, copy=True)
            self._slabs.clear()
            for shm in self._shm:
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - lingering view
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            self._shm.clear()

    # -- routing -------------------------------------------------------------
    def shard_of(self, view_name: str) -> int:
        return shard_of(view_name, self.num_workers)

    # -- dispatch ------------------------------------------------------------
    def execute_batch(self, analyst: str, groups, responses: list) -> None:
        """Run one planned batch's per-view groups on the worker pool.

        ``groups`` maps view name (or ``None``) to the plan-ordered
        :class:`PlannedQuery` items; ``responses`` is the caller's
        index-addressed result list.  Groups for distinct shards run
        concurrently (each conversation on its own thread); unplannable
        groups run inline in the parent (they only produce errors and
        mutate nothing).
        """
        self.ensure_started()
        inline: list[list[PlannedQuery]] = []
        by_shard: dict[int, list[tuple[str, list[PlannedQuery]]]] = {}
        for view_name, items in groups.items():
            if view_name is None:
                inline.append(items)
            elif view_name not in self._slabs:
                for item in items:
                    responses[item.index] = QueryResponse(item.index, error=(
                        f"view {view_name!r} was registered after the mp "
                        f"backend started; restart the service to shard it"))
            else:
                by_shard.setdefault(self.shard_of(view_name), []).append(
                    (view_name, items))
        if by_shard and analyst not in self._analyst_rows:
            for sgroups in by_shard.values():
                for _, items in sgroups:
                    for item in items:
                        responses[item.index] = QueryResponse(
                            item.index, error=(
                                f"analyst {analyst!r} was registered after "
                                f"the mp backend started; restart the "
                                f"service"))
            by_shard = {}
        tasks = sorted(by_shard.items())
        futures = []
        # Dispatch-pool threads don't inherit this thread's context-var
        # state; the captured trace context rides along explicitly.
        trace_ctx = tracing.capture()
        if len(tasks) > 1:
            pool = self._ensure_pool()
            futures = [pool.submit(self._run_conversation,
                                   self._shards[index], analyst, sgroups,
                                   responses, trace_ctx)
                       for index, sgroups in tasks[1:]]
        first_error: BaseException | None = None
        try:
            if tasks:
                self._run_conversation(self._shards[tasks[0][0]], analyst,
                                       tasks[0][1], responses, trace_ctx)
            for items in inline:
                execute_planned_group(self.service.engine, analyst, None,
                                      items, responses)
        except BaseException as exc:
            first_error = exc
        for future in futures:
            exc = future.exception()
            if exc is not None and first_error is None:
                first_error = exc
        if first_error is not None:
            raise first_error

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-mp-dispatch")
            return self._pool

    def _encode(self, shard: _Shard, sgroups) -> tuple[list, dict, dict]:
        payload, new_sql, new_plans = [], {}, {}
        with self._sql_lock:
            for view_name, items in sgroups:
                entries = []
                for item in items:
                    sql = item.request.sql
                    text = sql if isinstance(sql, str) \
                        else to_sql(item.statement)
                    sid = self._sql_ids.get(text)
                    if sid is None:
                        sid = self._sql_ids[text] = len(self._sql_ids)
                    if sid not in shard.sent_ids:
                        new_sql[sid] = text
                        shard.sent_ids.add(sid)
                        plan = self._export_plan(item)
                        if plan is not None:
                            new_plans[sid] = plan
                    entries.append((item.index, sid, item.request.accuracy,
                                    item.request.epsilon))
                payload.append((view_name, entries))
        return payload, new_sql, new_plans

    def _export_plan(self, item: PlannedQuery):
        """The parent's compiled plan for one planned item, view swapped
        for its name (see :meth:`_Worker._seed_plans`).  The planner's
        :class:`CompiledStatement` rides on ``item.entry`` — exporting
        it costs zero extra cache probes.  ``None`` (worker compiles on
        its own) when planning could not compile the statement.

        Scalar plans drop the statement AST: pickling the nested node
        dataclasses costs more than everything else in the plan, and the
        scalar execution path never reads it when the raw SQL text is
        available (the text is the log/cache key).  GROUP BY and AVG
        keep theirs — their engine paths re-enter via the statement."""
        compiled = item.entry
        if compiled is None:
            return None
        statement = None if compiled.kind == "scalar" else compiled.statement
        return (compiled.kind, compiled.view.name, statement,
                compiled.query, compiled.group_parts, compiled.avg_parts,
                compiled.strictest)

    def _sync_for(self, analyst: str) -> tuple:
        """Authoritative cross-shard tallies for one dispatch (see
        :meth:`_Worker._apply_sync`), snapshotted under the state lock so
        a concurrent replay can never be bisected."""
        engine = self.service.engine
        prov = engine.provenance
        mech = engine.mechanism
        with self._state_lock:
            return (prov._row_sum.get(analyst, 0.0), prov._table_sum,
                    prov._table_max_sum,
                    mech._release_counts.get(analyst, 0))

    def _run_conversation(self, shard: _Shard, analyst: str, sgroups,
                          responses: list, trace_ctx=None) -> None:
        with tracing.activate_context(trace_ctx), \
                tracing.span("mp_conversation", shard=shard.index), \
                shard.lock:
            if self._closed:
                self._fail_groups(shard, sgroups, responses,
                                  "service is closed")
                return
            self.conversations += 1
            trace = tracing.current_trace()
            payload, new_sql, new_plans = self._encode(shard, sgroups)
            try:
                shard.conn.send(("batch", analyst, payload, new_sql,
                                 new_plans, self._sync_for(analyst),
                                 trace.trace_id if trace is not None
                                 else None))
                self._pump(shard, sgroups, responses)
            except (EOFError, OSError, BrokenPipeError):
                self._handle_crash(shard, sgroups, responses)

    def _pump(self, shard: _Shard, sgroups, responses: list) -> None:
        """Wait out the worker's ``done`` (all charge traffic rides it)."""
        while True:
            msg = shard.conn.recv()
            kind = msg[0]
            if kind == "done":
                self._finish(shard, msg[1], sgroups, responses)
                return
            raise ReproError(  # pragma: no cover - protocol guard
                f"unexpected worker message {kind!r}")

    def try_execute_raw(self, analyst: str,
                        batch: list[QueryRequest], responses: list) -> bool:
        """Single-worker fast path: forward the raw batch, unplanned.

        With ``workers=1`` the view -> shard routing is degenerate —
        every plannable query lands on worker 0 — so the parent's
        planning pass adds no information the worker needs and its
        compiled plans would only be re-serialised down the pipe.
        Forwarding the raw requests lets the worker run
        :func:`plan_batch` itself (see :meth:`_Worker.serve_raw`):
        planning happens once system-wide instead of twice, which is
        most of the mp backend's single-CPU overhead.  Returns ``False``
        — caller falls back to the plan-and-group path — whenever the
        preconditions don't hold: multiple workers, an analyst or view
        registered after the fork, or an empty batch.
        """
        self.ensure_started()
        if self.num_workers != 1 or not batch:
            return False
        if analyst not in self._analyst_rows:
            return False
        registry = self.service.engine.registry
        if registry._route_generation != self._fork_route_generation:
            return False
        shard = self._shards[0]
        # _fail_groups / _handle_crash only read ``item.index``.
        sgroups = [(None, [PlannedQuery(index=i, request=request,
                                        statement=None, view_name=None,
                                        per_bin_target=None,
                                        is_group_by=False)
                           for i, request in enumerate(batch)])]
        with tracing.span("mp_conversation", shard=0, raw=True), \
                shard.lock:
            if self._closed:
                self._fail_groups(shard, sgroups, responses,
                                  "service is closed")
                return True
            self.conversations += 1
            trace = tracing.current_trace()
            entries = []
            new_sql: dict[int, str] = {}
            with self._sql_lock:
                for i, request in enumerate(batch):
                    text = request.sql if isinstance(request.sql, str) \
                        else to_sql(request.sql)
                    sid = self._sql_ids.get(text)
                    if sid is None:
                        sid = self._sql_ids[text] = len(self._sql_ids)
                    if sid not in shard.sent_ids:
                        new_sql[sid] = text
                        shard.sent_ids.add(sid)
                    entries.append((i, sid, request.accuracy,
                                    request.epsilon))
            try:
                shard.conn.send(("raw", analyst, entries, new_sql,
                                 self._sync_for(analyst),
                                 trace.trace_id if trace is not None
                                 else None))
                self._pump(shard, sgroups, responses)
            except (EOFError, OSError, BrokenPipeError):
                self._handle_crash(shard, sgroups, responses)
        return True

    def _unwind(self, pending: dict, reason: str) -> str:
        """Roll back every replayed-but-uncommitted charge (reverse
        order) and return the slots; callers hold ``_state_lock``."""
        mech = self.service.engine.mechanism
        for _, reservation in reversed(list(pending.items())):
            try:
                reservation.rollback()
            except ReproError:  # pragma: no cover - defensive
                pass
            mech._release_release_slot(reservation.analyst)
        pending.clear()
        return reason

    def _replay_ops(self, ops, pending: dict) -> str | None:
        """Replay the worker's charge ops against the authoritative
        table (callers hold ``_state_lock``).

        Every accepted reserve becomes a real pending
        :class:`~repro.core.provenance.Reservation` in ``pending``;
        every worker-side rejection must reject here too, with the same
        reason — the checks are deterministic functions of tallies the
        dispatch synced, so any divergence means another shard's
        traffic moved them mid-batch.  Returns the mismatch reason
        (with ``pending`` already unwound) or ``None`` on clean replay.
        """
        engine = self.service.engine
        prov = engine.provenance
        mech = engine.mechanism
        for op in ops:
            if op[0] == "rollback":
                reservation = pending.pop(op[1], None)
                if reservation is None:  # pragma: no cover - protocol guard
                    return self._unwind(pending,
                                        "rollback of an unknown charge")
                reservation.rollback()
                mech._release_release_slot(reservation.analyst)
                continue
            (_, cid, analyst, view, epsilon, column_mode, meta,
             worker_ok, worker_reason, _worker_constraint) = op
            try:
                mech._reserve_release_slot(analyst)
            except QueryRejected as exc:
                # The worker's (synced) ledger accepted this slot.
                return self._unwind(pending,
                                    f"delta ledger diverged: {exc.reason}")
            try:
                reservation = prov.reserve(analyst, view, epsilon,
                                           mech.constraints,
                                           column_mode=column_mode,
                                           meta=meta)
            except QueryRejected as exc:
                mech._release_release_slot(analyst)
                if worker_ok or exc.reason != worker_reason:
                    return self._unwind(
                        pending, f"provenance verdict diverged: {exc.reason}")
                self.charge_rejections += 1
                continue
            if not worker_ok:
                reservation.rollback()
                mech._release_release_slot(analyst)
                return self._unwind(
                    pending, "worker rejected a charge the ledger accepts")
            pending[cid] = reservation
            self.brokered_charges += 1
        return None

    def _finish(self, shard: _Shard, payload: dict, sgroups,
                responses: list) -> None:
        engine = self.service.engine
        mech = engine.mechanism
        # 1. Replay the worker's charge ops in decision order against
        #    the authoritative table, verifying every verdict.  A
        #    mismatch (concurrent same-analyst cross-shard traffic moved
        #    the tallies mid-batch) unwinds the whole batch — the
        #    worker's published answers assumed charges that never
        #    settled, so nothing it computed may be returned.
        pending: dict[int, object] = {}
        with self._state_lock:
            mismatch = self._replay_ops(payload["ops"], pending)
            if mismatch is not None:
                self.charge_mismatches += 1
        if mismatch is not None:
            self._fail_groups(
                shard, sgroups, responses,
                f"mp worker for shard {shard.index} diverged from the "
                f"authoritative ledger ({mismatch}); nothing was charged "
                f"for this query")
            self._respawn(shard)
            return
        # 2. Authoritative commits, in the worker's commit order, outside
        #    every lock — the durability hook fires here, exactly as the
        #    threaded path's Reservation.commit does.  A hook failure is
        #    re-raised after the batch is fully folded: the charge
        #    stands (over-counting direction), never re-granted.
        hook_error: BaseException | None = None
        for cid in payload["committed"]:
            reservation = pending.pop(cid, None)
            if reservation is None:  # pragma: no cover - protocol guard
                continue
            try:
                reservation.commit()
            except BaseException as exc:  # noqa: BLE001
                if hook_error is None:
                    hook_error = exc
        # 3. Anything still pending was neither committed nor rolled
        #    back by the worker (a worker-side bug swallowed it): refuse
        #    to let the charge leak.
        leftovers = list(pending.items())
        pending.clear()
        for _, reservation in reversed(leftovers):
            with self._state_lock:
                try:
                    reservation.rollback()
                except ReproError:  # pragma: no cover - defensive
                    pass
                mech._release_release_slot(reservation.analyst)
        # 4. Fold the worker's mirror deltas into the parent state:
        #    synopsis values from the shared slab (one copy, no pickle),
        #    mechanism bookkeeping, fast-lane/cache counters, audit log.
        with self._state_lock:
            store = mech.store
            for rec in payload["synopses"]:
                values = np.array(self._slabs[rec["view"]][rec["row"]],
                                  copy=True)
                synopsis = Synopsis(
                    view_name=rec["view"], values=values,
                    epsilon=rec["epsilon"], delta=rec["delta"],
                    variance=rec["variance"], analyst=rec["analyst"])
                if synopsis.analyst is None:
                    store.put_global(synopsis)
                else:
                    store.put_local(synopsis)
            mech._generation.update(payload["generation"])
            mech._last_combination.update(payload["last_combination"])
            mech._local_meta.update(payload["local_meta"])
            hits, misses = payload["fast_lane"]
            if hits or misses:
                engine._note_fast_lane(hits=hits, misses=misses)
            cache_hits, cache_misses = payload["cache"]
            stats = self.service.cache_stats
            with stats._lock:
                stats.hits += cache_hits
                stats.misses += cache_misses
            for fields in payload["log"]:
                (log_analyst, sql, view_name, charged, cache_hit, answered,
                 reason, delegated) = fields
                engine.log.record(log_analyst, sql, view_name, charged,
                                  cache_hit, answered,
                                  rejection_reason=reason,
                                  delegated_from=delegated)
        for packed in payload["responses"]:
            responses[packed[0]] = _unpack_response(packed)
        # 5. Graft the worker's span export under this conversation's
        #    span: the worker's clock origin is its batch receipt, which
        #    the conversation span's start approximates on this side.
        exported = payload.get("spans")
        trace_ctx = tracing.capture()
        if exported and trace_ctx is not None:
            trace_ctx[0].graft(exported, trace_ctx[1],
                               tracing.current_span_start())
        if hook_error is not None:
            raise hook_error

    def _handle_crash(self, shard: _Shard, sgroups, responses) -> None:
        """A worker died mid-conversation: fail the batch, respawn.

        Deferred settlement means there is nothing to refund — the
        parent replays charges only from a completed ``done`` payload,
        so a worker that died before sending one never charged a thing.
        """
        with self._state_lock:
            self.crashes += 1
        self._fail_groups(
            shard, sgroups, responses,
            f"mp worker for shard {shard.index} died mid-batch; "
            f"nothing was charged for this query")
        self._respawn(shard)

    def _fail_groups(self, shard: _Shard, sgroups, responses,
                     reason: str) -> None:
        for _, items in sgroups:
            for item in items:
                if responses[item.index] is None:
                    responses[item.index] = QueryResponse(item.index,
                                                          error=reason)

    # -- health / introspection ----------------------------------------------
    def ping(self) -> list:
        """Round-trip every worker; dead workers are respawned and
        reported as ``None`` for this probe."""
        self.ensure_started()
        pids: list[int | None] = []
        for shard in self._shards:
            with shard.lock:
                try:
                    shard.conn.send(("ping",))
                    reply = shard.conn.recv()
                    pids.append(int(reply[1]))
                except (EOFError, OSError, BrokenPipeError):
                    with self._state_lock:
                        self.crashes += 1
                    self._respawn(shard)
                    pids.append(None)
        return pids

    def inject_crash(self, shard_index: int, after_items: int) -> None:
        """Fault-injection hook (tests): the worker SIGKILLs itself
        after answering ``after_items`` more queries."""
        self.ensure_started()
        shard = self._shards[shard_index]
        with shard.lock:
            shard.conn.send(("crash_after", after_items))

    def describe(self) -> dict:
        """Strictly JSON-native backend block for ``snapshot()``."""
        return {
            "mode": "mp",
            "workers": int(self.num_workers),
            "started": bool(self._started),
            "restarts": int(self.restarts),
            "crashes": int(self.crashes),
            "conversations": int(self.conversations),
            "brokered_charges": int(self.brokered_charges),
            "charge_rejections": int(self.charge_rejections),
            "charge_messages": int(self.charge_messages),
            "charge_mismatches": int(self.charge_mismatches),
            "incarnations": [int(s.incarnation) for s in self._shards],
        }


__all__ = ["DEFAULT_MP_WORKERS", "MpBackend", "shard_of"]
