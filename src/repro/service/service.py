"""The multi-analyst query service: sessions, batching, thread safety.

:class:`QueryService` is the serving front-end over a :class:`DProvDB`
engine.  It adds what the bare engine lacks for concurrent operation:

* **sessions** — many connections (e.g. one per worker thread) mapped onto
  the engine's registered analysts;
* **a global critical section** — the engine's constraint check and the
  provenance update it authorises are not atomic on their own; the service
  serialises every submission through one reentrant lock so concurrent
  sessions can never interleave a check-then-charge and over-spend a
  budget (see ``tests/test_service_concurrency.py`` for the invariant);
* **batched planning** — :func:`repro.service.planner.plan_batch` orders a
  batch view-by-view, strictest accuracy first, so one synopsis refresh
  answers many queries;
* **a bounded synopsis cache** — local synopses live in an LRU store with
  hit/miss statistics (:class:`repro.metrics.runtime.CacheStats`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.analyst import Analyst
from repro.core.engine import Answer, DProvDB
from repro.core.synopsis import SynopsisStore
from repro.datasets.base import DatasetBundle
from repro.exceptions import QueryRejected, ReproError
from repro.metrics.runtime import CacheStats, Stopwatch
from repro.service.cache import LruSynopsisStore
from repro.service.planner import BatchPlan, plan_batch
from repro.service.session import QueryRequest, QueryResponse, Session

#: Default bound on cached local synopses (one entry per (analyst, view)
#: pair, so this accommodates e.g. 16 analysts x 16 hot views).  Pass
#: ``max_cached_synopses=None`` for an unbounded store: an eviction is not
#: free — re-deriving the synopsis later is a fresh release (see
#: :mod:`repro.service.cache`).
DEFAULT_MAX_CACHED = 256


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes for monitoring."""

    submitted: int = 0
    answered: int = 0
    rejected: int = 0
    failed: int = 0
    answer_cache_hits: int = 0
    fresh_releases: int = 0
    batches: int = 0
    epsilon_by_analyst: dict[str, float] = field(default_factory=dict)
    busy_seconds: float = 0.0

    @property
    def answer_cache_hit_rate(self) -> float:
        """Fraction of *answers* served without a fresh release."""
        total = self.answer_cache_hits + self.fresh_releases
        return self.answer_cache_hits / total if total else 0.0

    def _record_answer(self, analyst: str, answer: Answer) -> None:
        if answer.cache_hit:
            self.answer_cache_hits += 1
        else:
            self.fresh_releases += 1
        self.epsilon_by_analyst[analyst] = \
            self.epsilon_by_analyst.get(analyst, 0.0) + answer.epsilon_charged

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted, "answered": self.answered,
            "rejected": self.rejected, "failed": self.failed,
            "answer_cache_hits": self.answer_cache_hits,
            "fresh_releases": self.fresh_releases,
            "answer_cache_hit_rate": self.answer_cache_hit_rate,
            "batches": self.batches,
            "epsilon_by_analyst": dict(self.epsilon_by_analyst),
            "busy_seconds": self.busy_seconds,
        }


class QueryService:
    """Thread-safe serving layer over one :class:`DProvDB` engine."""

    def __init__(self, engine: DProvDB,
                 max_cached_synopses: int | None = DEFAULT_MAX_CACHED) -> None:
        if engine.mechanism.store.local_keys or \
                engine.mechanism.store.global_views:
            raise ReproError(
                "QueryService must wrap a fresh engine (its synopsis store "
                "is replaced with a bounded one); construct the service "
                "before submitting queries, or use QueryService.build()"
            )
        if type(engine.mechanism.store) is not SynopsisStore:
            raise ReproError(
                "the engine already carries a custom synopsis store; "
                "QueryService manages its own bounded store — drop the "
                "synopsis_store= injection and size the service's cache "
                "with max_cached_synopses= instead"
            )
        self._engine = engine
        self._lock = threading.RLock()
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self.cache_stats = CacheStats()
        engine.mechanism.store = LruSynopsisStore(max_cached_synopses,
                                                  self.cache_stats)
        self.stats = ServiceStats()
        self._watch = Stopwatch()

    @classmethod
    def build(cls, bundle: DatasetBundle, analysts: Sequence[Analyst],
              epsilon: float, *,
              max_cached_synopses: int | None = DEFAULT_MAX_CACHED,
              **engine_kwargs) -> "QueryService":
        """Construct an engine and wrap it in one step."""
        return cls(DProvDB(bundle, analysts, epsilon, **engine_kwargs),
                   max_cached_synopses=max_cached_synopses)

    @property
    def engine(self) -> DProvDB:
        """The wrapped engine.  Mutating it outside the service lock forfeits
        the concurrency guarantees; prefer the session API."""
        return self._engine

    # -- sessions -------------------------------------------------------------
    def open_session(self, analyst: str) -> Session:
        """Open a connection for a registered analyst (many allowed)."""
        with self._lock:
            self._engine._check_analyst(analyst)
            session = Session(next(self._session_ids), analyst)
            self._sessions[session.session_id] = session
            return session

    def close_session(self, session: Session | int) -> Session:
        """Close a session; its counters remain readable."""
        with self._lock:
            closed = self._resolve_session(session)
            closed.closed = True
            del self._sessions[closed.session_id]
            return closed

    def active_sessions(self) -> tuple[Session, ...]:
        with self._lock:
            return tuple(self._sessions.values())

    def _resolve_session(self, session: Session | int) -> Session:
        session_id = session.session_id if isinstance(session, Session) \
            else session
        try:
            live = self._sessions[session_id]
        except KeyError:
            raise ReproError(f"no open session {session_id}") from None
        return live

    # -- submission -----------------------------------------------------------
    def submit(self, session: Session | int, sql,
               accuracy: float | None = None,
               epsilon: float | None = None) -> QueryResponse:
        """Answer one query on a session; never raises for query-level
        failures — inspect :attr:`QueryResponse.error`."""
        request = QueryRequest(sql, accuracy=accuracy, epsilon=epsilon)
        with self._lock:
            live = self._resolve_session(session)
            with self._watch:
                response = self._execute(live.analyst, 0, request,
                                         is_group_by=None)
            self._account(live, response)
            self.stats.busy_seconds = self._watch.seconds
        return response

    def submit_batch(self, session: Session | int,
                     requests: Sequence[QueryRequest]
                     ) -> list[QueryResponse]:
        """Answer a batch through the view-grouping planner.

        Responses are returned in the order of ``requests`` regardless of
        execution order.
        """
        batch = [r if isinstance(r, QueryRequest) else QueryRequest(r)
                 for r in requests]
        with self._lock:
            live = self._resolve_session(session)
            with self._watch:
                plan = plan_batch(self._engine, batch)
                responses: list[QueryResponse | None] = [None] * len(batch)
                for item in plan.ordered:
                    responses[item.index] = self._execute_planned(
                        live.analyst, item)
            for response in responses:
                self._account(live, response)
            live.batches += 1
            self.stats.batches += 1
            self.stats.busy_seconds = self._watch.seconds
        return responses  # type: ignore[return-value]

    def plan(self, requests: Sequence[QueryRequest]) -> BatchPlan:
        """Expose the planner's decision for a batch (no execution)."""
        with self._lock:
            return plan_batch(self._engine, list(requests))

    def _execute_planned(self, analyst: str, item) -> QueryResponse:
        """Run one planned entry, using the compiled fast path when the
        planner kept the (view, query, target) triple."""
        if not item.compiled:
            return self._execute(analyst, item.index, item.request,
                                 is_group_by=item.is_group_by,
                                 statement=item.statement)
        try:
            answer = self._engine.submit_compiled(
                analyst, item.statement, item.view, item.query, item.target)
            return QueryResponse(item.index, answer=answer)
        except QueryRejected as exc:
            return QueryResponse(item.index, error=str(exc), rejected=True)
        except ReproError as exc:
            return QueryResponse(item.index, error=str(exc))

    def _execute(self, analyst: str, index: int, request: QueryRequest,
                 is_group_by: bool | None,
                 statement=None) -> QueryResponse:
        """Run one request against the engine (caller holds the lock)."""
        sql = statement if statement is not None else request.sql
        try:
            if is_group_by is None:
                resolved = self._engine._resolve(sql)
                is_group_by = bool(resolved.group_by)
                sql = resolved
            if is_group_by:
                groups = self._engine.submit_group_by(
                    analyst, sql, accuracy=request.accuracy,
                    epsilon=request.epsilon)
                return QueryResponse(index, groups=tuple(groups))
            answer = self._engine.submit(analyst, sql,
                                         accuracy=request.accuracy,
                                         epsilon=request.epsilon)
            return QueryResponse(index, answer=answer)
        except QueryRejected as exc:
            return QueryResponse(index, error=str(exc), rejected=True)
        except ReproError as exc:
            return QueryResponse(index, error=str(exc))

    def _account(self, session: Session, response: QueryResponse) -> None:
        session._record(response)
        self.stats.submitted += 1
        if not response.ok:
            if response.rejected:
                self.stats.rejected += 1
            else:
                self.stats.failed += 1
            return
        self.stats.answered += 1
        for answer in response.answers():
            self.stats._record_answer(session.analyst, answer)

    # -- reporting ------------------------------------------------------------
    def analyst_spent(self, analyst: str) -> float:
        """Epsilon the provenance table records for one analyst."""
        with self._lock:
            return self._engine.provenance.row_total(analyst)

    def snapshot(self) -> dict:
        """Point-in-time service metrics (service + synopsis-cache stats)."""
        with self._lock:
            return {
                "service": self.stats.as_dict(),
                "synopsis_cache": self.cache_stats.as_dict(),
                "open_sessions": len(self._sessions),
            }


__all__ = ["DEFAULT_MAX_CACHED", "QueryService", "ServiceStats"]
