"""The multi-analyst query service: sessions, batching, sharded execution.

:class:`QueryService` is the serving front-end over a :class:`DProvDB`
engine.  It adds what the bare engine lacks for concurrent operation:

* **sessions** — many connections (e.g. one per worker thread) mapped onto
  the engine's registered analysts;
* **sharded execution** (the default) — there is *no* global critical
  section: check-then-charge atomicity lives in
  :meth:`repro.core.provenance.ProvenanceTable.reserve`, synopsis
  consistency in the engine's per-view sections
  (:meth:`repro.core.engine.DProvDB.view_section`, acquired in sorted
  view-name order for multi-view work), and service counters behind a
  dedicated stats lock — so submissions against disjoint views proceed in
  parallel (see ``tests/test_service_sharding.py`` for the invariants);
* **batched planning** — :func:`repro.service.planner.plan_batch` orders a
  batch view-by-view, strictest accuracy first, so one synopsis refresh
  answers many queries; under sharded execution the per-view groups of a
  batch are dispatched concurrently through a
  :class:`repro.service.sharding.ShardManager` worker pool;
* **a bounded synopsis cache** — local synopses live in an LRU store with
  hit/miss statistics (:class:`repro.metrics.runtime.CacheStats`).

``execution="global"`` restores the PR 1 behaviour — one reentrant lock
serialising every submission end to end — and exists as the measured
baseline for the sharding speedup (``bench-service --compare-global``).

Orthogonal to the execution mode is the **backend**: ``"threaded"``
(default) runs everything in-process; ``"mp"`` dispatches the per-view
groups to forked worker processes with shared-memory synopses and
parent-brokered accounting (:mod:`repro.service.mp_backend`), escaping
the GIL for CPU-bound workloads.  Accounting semantics are identical —
``bench-service --backend mp --compare-threaded`` gates on a
bit-identical sequential replay.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.analyst import Analyst
from repro.core.engine import Answer, DProvDB
from repro.core.synopsis import SynopsisStore
from repro.datasets.base import DatasetBundle
from repro.exceptions import ReproError, ServiceClosed, SessionClosed
from repro.metrics import tracing
from repro.metrics.audit import AuditTrail
from repro.metrics.runtime import CacheStats, CompensatedSum
from repro.metrics.tracing import Tracer
from repro.persistence.schema import provenance_summary
from repro.service.cache import LruSynopsisStore
from repro.service.executor import (
    execute_planned,
    execute_planned_group,
    execute_request,
)
from repro.service.planner import BatchPlan, PlannedQuery, _plan_one, \
    plan_batch
from repro.service.session import QueryRequest, QueryResponse, Session
from repro.service.sharding import DEFAULT_NUM_SHARDS, ShardManager

#: Default bound on cached local synopses (one entry per (analyst, view)
#: pair, so this accommodates e.g. 16 analysts x 16 hot views).  Pass
#: ``max_cached_synopses=None`` for an unbounded store: an eviction is not
#: free — re-deriving the synopsis later is a fresh release (see
#: :mod:`repro.service.cache`).
DEFAULT_MAX_CACHED = 256

#: Supported execution modes.
EXECUTION_MODES = ("sharded", "global")

#: Supported execution backends: ``"threaded"`` shares the interpreter,
#: ``"mp"`` forks worker processes (see :mod:`repro.service.mp_backend`).
BACKENDS = ("threaded", "mp")

#: How many *closed* sessions the service remembers (for idempotent
#: close and the tagged :class:`SessionClosed` error).  A long-running
#: daemon churns through sessions, so retention must be bounded: once a
#: closed session ages out, submitting to its id degrades to the generic
#: "no open session" error (404 over the wire) instead of the 409.
MAX_CLOSED_SESSIONS = 4096


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes for monitoring.

    Mutation happens only under the owning service's dedicated stats lock
    (never the execution path's view locks), so the counters stay exact
    under sharded submission.  ``busy_seconds`` sums per-submission
    execution time; overlapping submissions in sharded mode can therefore
    sum to more than wall-clock — the ratio is the effective parallelism.

    Per-analyst epsilon is accumulated with Neumaier compensation
    (:class:`repro.metrics.runtime.CompensatedSum`): a plain float sum
    drifts from the provenance table's ledger over long runs of small
    charges (regression-tested against ``provenance_summary`` after 10k
    charges in ``tests/test_fast_lane_equivalence.py``).
    """

    submitted: int = 0
    answered: int = 0
    rejected: int = 0
    failed: int = 0
    answer_cache_hits: int = 0
    fresh_releases: int = 0
    batches: int = 0
    epsilon_terms: dict[str, CompensatedSum] = field(default_factory=dict)
    busy_seconds: float = 0.0

    @property
    def answer_cache_hit_rate(self) -> float:
        """Fraction of *answers* served without a fresh release."""
        total = self.answer_cache_hits + self.fresh_releases
        return self.answer_cache_hits / total if total else 0.0

    @property
    def epsilon_by_analyst(self) -> dict[str, float]:
        """Compensated per-analyst epsilon totals, as plain floats."""
        return {name: term.value
                for name, term in self.epsilon_terms.items()}

    def _record_answer(self, analyst: str, answer: Answer) -> None:
        if answer.cache_hit:
            self.answer_cache_hits += 1
        else:
            self.fresh_releases += 1
        term = self.epsilon_terms.get(analyst)
        if term is None:
            term = self.epsilon_terms[analyst] = CompensatedSum()
        term.add(answer.epsilon_charged)

    def as_dict(self) -> dict:
        """Strictly JSON-serializable counters (the wire protocol ships
        this verbatim): string keys, native ints/floats — numpy scalars
        that reach the epsilon ledger are coerced on the way out."""
        return {
            "submitted": int(self.submitted), "answered": int(self.answered),
            "rejected": int(self.rejected), "failed": int(self.failed),
            "answer_cache_hits": int(self.answer_cache_hits),
            "fresh_releases": int(self.fresh_releases),
            "answer_cache_hit_rate": float(self.answer_cache_hit_rate),
            "batches": int(self.batches),
            "epsilon_by_analyst": {str(name): float(spent) for name, spent
                                   in self.epsilon_by_analyst.items()},
            "busy_seconds": float(self.busy_seconds),
        }


class QueryService:
    """Thread-safe serving layer over one :class:`DProvDB` engine."""

    def __init__(self, engine: DProvDB,
                 max_cached_synopses: int | None = DEFAULT_MAX_CACHED, *,
                 execution: str = "sharded",
                 shards: int = DEFAULT_NUM_SHARDS,
                 backend: str = "threaded",
                 workers: int | None = None,
                 durability=None,
                 tracer: Tracer | None = None,
                 audit: bool = True) -> None:
        if execution not in EXECUTION_MODES:
            raise ReproError(f"unknown execution mode {execution!r}; "
                             f"choose from {EXECUTION_MODES}")
        if backend not in BACKENDS:
            raise ReproError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        if backend == "mp" and execution != "sharded":
            raise ReproError(
                "the mp backend requires sharded execution (a global "
                "critical section and a worker pool are contradictory)")
        if engine.mechanism.store.local_keys or \
                engine.mechanism.store.global_views:
            raise ReproError(
                "QueryService must wrap a fresh engine (its synopsis store "
                "is replaced with a bounded one); construct the service "
                "before submitting queries, or use QueryService.build()"
            )
        if type(engine.mechanism.store) is not SynopsisStore:
            raise ReproError(
                "the engine already carries a custom synopsis store; "
                "QueryService manages its own bounded store — drop the "
                "synopsis_store= injection and size the service's cache "
                "with max_cached_synopses= instead"
            )
        self._engine = engine
        self._execution = execution
        #: Global-mode critical section (PR 1 baseline); unused when sharded.
        self._lock = threading.RLock()
        self._sessions_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        #: Bounded FIFO of recently closed sessions (insertion-ordered
        #: dict; oldest evicted past MAX_CLOSED_SESSIONS).
        self._closed_sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._closed = False
        self.cache_stats = CacheStats()
        engine.mechanism.store = LruSynopsisStore(max_cached_synopses,
                                                  self.cache_stats)
        self.stats = ServiceStats()
        #: Request tracer (see :mod:`repro.metrics.tracing`).  Direct
        #: in-process submissions mint their own trace here; the HTTP
        #: daemon mints one per request up front (propagating the
        #: client's id) and this tracer just keeps the ring.  Pass
        #: ``Tracer(enabled=False)`` to strip tracing to a single
        #: context-var read per span site.
        self.tracer = tracer if tracer is not None else Tracer()
        self._backend = backend
        if backend == "mp":
            # Imported lazily: the mp backend needs POSIX fork +
            # multiprocessing.shared_memory, and its constructor
            # validates the engine (additive mechanism, per-view noise
            # streams) with actionable errors.
            from repro.service.mp_backend import MpBackend

            self.sharding = None
            self._backend_impl = MpBackend(self, workers)
        else:
            if workers is not None:
                raise ReproError(
                    "workers= is an mp-backend knob; the threaded backend "
                    "sizes its pool with shards=")
            self.sharding = (ShardManager(shards) if execution == "sharded"
                             else None)
            self._backend_impl = None
        #: Optional :class:`repro.persistence.DurabilityManager`.  Bound
        #: last — the manager runs crash recovery against the fully
        #: constructed service (bounded store in place, no traffic yet)
        #: and only then attaches the write-ahead ledger hooks, so
        #: nothing recovery replays is ever re-journaled.
        self.durability = durability
        if durability is not None:
            try:
                durability.bind(self)
            except BaseException:
                # Recovery refused (e.g. strict mode on a torn tail):
                # the caller never receives the instance, so release the
                # shard worker pool here or its threads leak.
                if self.sharding is not None:
                    self.sharding.close()
                if self._backend_impl is not None:
                    self._backend_impl.close()
                raise
        #: Live budget-audit tailer (:mod:`repro.metrics.audit`):
        #: attached *after* durability so the ledger keeps assigning
        #: sequence numbers before the trail reads them, and so recovery
        #: never replays through a live hook.  ``audit=False`` strips it
        #: entirely — the control arm of ``bench-service
        #: --audit-overhead``.
        self.audit = AuditTrail(engine, durability) if audit else None
        if self.audit is not None:
            self.audit.attach(self)

    @classmethod
    def build(cls, bundle: DatasetBundle, analysts: Sequence[Analyst],
              epsilon: float, *,
              max_cached_synopses: int | None = DEFAULT_MAX_CACHED,
              execution: str = "sharded",
              shards: int = DEFAULT_NUM_SHARDS,
              backend: str = "threaded",
              workers: int | None = None,
              durability=None,
              tracer: Tracer | None = None,
              audit: bool = True,
              **engine_kwargs) -> "QueryService":
        """Construct an engine and wrap it in one step."""
        return cls(DProvDB(bundle, analysts, epsilon, **engine_kwargs),
                   max_cached_synopses=max_cached_synopses,
                   execution=execution, shards=shards,
                   backend=backend, workers=workers,
                   durability=durability, tracer=tracer, audit=audit)

    @property
    def engine(self) -> DProvDB:
        """The wrapped engine.  Safe to read; prefer the session API for
        submissions so service counters stay consistent."""
        return self._engine

    @property
    def execution(self) -> str:
        """``"sharded"`` (no global lock) or ``"global"`` (PR 1 baseline)."""
        return self._execution

    @property
    def backend(self) -> str:
        """``"threaded"`` (in-process) or ``"mp"`` (forked workers)."""
        return self._backend

    @property
    def mp_backend(self):
        """The :class:`repro.service.mp_backend.MpBackend` instance, or
        ``None`` on the threaded backend."""
        return self._backend_impl

    def start_backend(self) -> None:
        """Eagerly start the execution backend (no-op when threaded).

        ``repro serve`` calls this after durability recovery so the mp
        workers fork from the fully recovered parent state instead of
        lazily on the first query.
        """
        if self._backend_impl is not None:
            self._backend_impl.ensure_started()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed service refuses work."""
        return self._closed

    def close(self) -> None:
        """Shut the service down (idempotent).

        Releases the shard worker pool and marks the service closed:
        subsequent :meth:`open_session`/:meth:`submit`/:meth:`submit_batch`
        calls raise :class:`repro.exceptions.ServiceClosed` (the HTTP
        front-end maps it to 409).  Counters and snapshots stay readable.
        """
        self._closed = True
        if self.sharding is not None:
            self.sharding.close()
        if self._backend_impl is not None:
            self._backend_impl.close()
        if self.durability is not None:
            self.durability.close()

    def checkpoint(self) -> dict:
        """Fold the write-ahead ledger into a fresh checkpoint.

        Returns the checkpoint payload (whose ``provenance`` block is
        the same schema :meth:`snapshot` serves).  Requires the service
        to have been built with ``durability=``; callable while serving
        (never under-counts) and after :meth:`close` — ``repro serve``
        checkpoints on drain for an exact fold.
        """
        if self.durability is None:
            raise ReproError(
                "service has no durability manager; build it with "
                "durability=DurabilityManager(data_dir)")
        return self.durability.checkpoint()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("QueryService is closed")

    def _critical_section(self):
        """The PR 1 global lock in ``"global"`` mode; a no-op when sharded
        (atomicity then lives in the provenance table and view sections)."""
        if self._execution == "global":
            return self._lock
        return contextlib.nullcontext()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions -------------------------------------------------------------
    def open_session(self, analyst: str) -> Session:
        """Open a connection for a registered analyst (many allowed)."""
        self._check_open()
        with self._sessions_lock:
            self._engine._check_analyst(analyst)
            session = Session(next(self._session_ids), analyst)
            self._sessions[session.session_id] = session
        if self.durability is not None:
            # Journaled outside the sessions lock: the ledger fsync must
            # never sit inside a lock the submission path also takes.
            try:
                self.durability.record_session_event(
                    "open", session.session_id, analyst)
            except BaseException:
                # The caller never receives the handle, so unregister it
                # — otherwise a journaling failure (disk full) leaks an
                # uncloseable session into the active map forever.
                with self._sessions_lock:
                    self._sessions.pop(session.session_id, None)
                raise
        if self.audit is not None:
            self.audit.record_session("open", session.session_id, analyst)
        return session

    def close_session(self, session: Session | int) -> Session:
        """Close a session (idempotent); its counters remain readable."""
        with self._sessions_lock:
            session_id = session.session_id if isinstance(session, Session) \
                else session
            already = self._closed_sessions.get(session_id)
            if already is not None:
                return already
            closed = self._resolve_session(session)
            closed.closed = True
            self._closed_sessions[closed.session_id] = closed
            while len(self._closed_sessions) > MAX_CLOSED_SESSIONS:
                oldest = next(iter(self._closed_sessions))
                del self._closed_sessions[oldest]
            del self._sessions[closed.session_id]
        if self.durability is not None:
            self.durability.record_session_event(
                "close", closed.session_id, closed.analyst)
        if self.audit is not None:
            self.audit.record_session("close", closed.session_id,
                                      closed.analyst,
                                      epsilon_spent=closed.epsilon_spent)
        return closed

    def active_sessions(self) -> tuple[Session, ...]:
        with self._sessions_lock:
            return tuple(self._sessions.values())

    def _resolve_session(self, session: Session | int) -> Session:
        # Lock-free read: the sessions dict is only ever mutated under the
        # sessions lock, and a plain dict lookup is atomic in CPython, so
        # the hot submission path need not serialise on open/close traffic.
        session_id = session.session_id if isinstance(session, Session) \
            else session
        try:
            live = self._sessions[session_id]
        except KeyError:
            if session_id in self._closed_sessions or \
                    (isinstance(session, Session) and session.closed):
                raise SessionClosed(
                    f"session {session_id} is closed") from None
            raise ReproError(f"no open session {session_id}") from None
        return live

    # -- submission -----------------------------------------------------------
    def _maybe_trace(self):
        """Mint a trace for one submission, or ``None``.

        ``None`` — the overwhelmingly common outcome (tracer disabled,
        sampled out, or the caller already activated a trace that our
        spans will nest under) — costs two attribute reads, a
        context-var read, and a counter tick.  This is deliberately a
        plain branch rather than a ``@contextmanager``: the generator
        protocol alone costs ~3us per submission, which is ~12% of a
        warm fast-lane answer.
        """
        if not self.tracer.enabled or tracing.current_trace() is not None:
            return None
        return self.tracer.start()

    def submit(self, session: Session | int, sql,
               accuracy: float | None = None,
               epsilon: float | None = None) -> QueryResponse:
        """Answer one query on a session; never raises for query-level
        failures — inspect :attr:`QueryResponse.error`."""
        self._check_open()
        request = QueryRequest(sql, accuracy=accuracy, epsilon=epsilon)
        trace = self._maybe_trace()
        if trace is None:
            with self._critical_section():
                return self._submit_one(session, request)
        try:
            with tracing.activate(trace), \
                    tracing.span("service.submit"), \
                    self._critical_section():
                return self._submit_one(session, request)
        finally:
            self.tracer.finish(trace)

    def _submit_one(self, session: Session | int,
                    request: QueryRequest) -> QueryResponse:
        live = self._resolve_session(session)
        started = time.perf_counter()
        if self._backend_impl is not None:
            # mp backend: route even a single query through the planner
            # so it lands on its view's worker process.
            with tracing.span("plan"):
                item = _plan_one(self._engine, 0, request)
            responses: list[QueryResponse | None] = [None]
            self._backend_impl.execute_batch(
                live.analyst, {item.view_name: [item]}, responses)
            response = self._ensure_response(responses, 0)
        else:
            response = execute_request(self._engine, live.analyst, 0,
                                       request, is_group_by=None)
        elapsed = time.perf_counter() - started
        response = self._seal_lineage(response)
        self._account(live, response, elapsed)
        return response

    def submit_batch(self, session: Session | int,
                     requests: Sequence[QueryRequest]
                     ) -> list[QueryResponse]:
        """Answer a batch through the view-grouping planner.

        Responses are returned in the order of ``requests`` regardless of
        execution order.  Under sharded execution the plan's per-view
        groups run concurrently on the shard pool (each group still in
        strictest-first order); under global execution the whole batch
        runs inside the service lock, as in PR 1.
        """
        self._check_open()
        batch = [r if isinstance(r, QueryRequest) else QueryRequest(r)
                 for r in requests]
        parallel = self._execution == "sharded"
        trace = self._maybe_trace()
        if trace is None:
            with self._critical_section():
                return self._submit_batch_inner(session, batch,
                                                parallel=parallel)
        try:
            with tracing.activate(trace), \
                    tracing.span("service.submit"), \
                    self._critical_section():
                return self._submit_batch_inner(session, batch,
                                                parallel=parallel)
        finally:
            self.tracer.finish(trace)

    def _submit_batch_inner(self, session: Session | int,
                            batch: list[QueryRequest],
                            parallel: bool) -> list[QueryResponse]:
        live = self._resolve_session(session)
        started = time.perf_counter()
        responses: list[QueryResponse | None] = [None] * len(batch)

        # Single-worker mp: hand the raw batch to the worker, which runs
        # the planner itself — compiling here too would double the whole
        # planning cost of the serving path (see MpBackend.try_execute_raw).
        if self._backend_impl is not None and \
                self._backend_impl.try_execute_raw(live.analyst, batch,
                                                   responses):
            return self._account_batch(live, responses, started)

        with tracing.span("plan", queries=len(batch)):
            plan = plan_batch(self._engine, batch)
        groups: dict[str | None, list[PlannedQuery]] = {}
        for item in plan.ordered:
            groups.setdefault(item.view_name, []).append(item)

        if self._backend_impl is not None:
            self._backend_impl.execute_batch(live.analyst, groups, responses)
        else:
            # Shard-pool threads don't inherit this thread's context-var
            # state, so the trace context rides into the closure.
            trace_ctx = tracing.capture()

            def run_group(view_name: str | None,
                          items: list[PlannedQuery]) -> None:
                with tracing.activate_context(trace_ctx), \
                        tracing.span("shard_group", view=view_name,
                                     items=len(items)):
                    execute_planned_group(self._engine, live.analyst,
                                          view_name, items, responses)

            if parallel and self.sharding is not None and len(groups) > 1:
                self.sharding.run_groups(list(groups.items()), run_group)
            else:
                for view_name, items in groups.items():
                    run_group(view_name, items)
        return self._account_batch(live, responses, started)

    def _account_batch(self, live: Session, responses: list,
                       started: float) -> list[QueryResponse]:
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            for index in range(len(responses)):
                response = self._seal_lineage(
                    self._ensure_response(responses, index))
                responses[index] = response
                self._account_locked(live, response)
            live.batches += 1
            self.stats.batches += 1
            self.stats.busy_seconds += elapsed
        return responses  # type: ignore[return-value]

    def _seal_lineage(self, response: QueryResponse) -> QueryResponse:
        """Stamp the durable ledger's high-water mark into the lineage at
        accounting time.

        By now every charge this response caused has committed (the mp
        parent commits brokered charges before unpacking responses; the
        threaded path journals inside execution), so recovery to at least
        this sequence provably includes the answer's charge.  Descriptive
        only — nothing downstream reads it back.
        """
        lineage = response.lineage
        if lineage is None or lineage.ledger_seq is not None or \
                self.durability is None:
            return response
        return replace(response, lineage=lineage._replace(
            ledger_seq=self.durability.ledger_seq))

    @staticmethod
    def _ensure_response(responses: list, index: int) -> QueryResponse:
        """Every index must answer; a hole is a backend bug surfaced as a
        failed (never silently dropped, never charged) response."""
        response = responses[index]
        if response is None:
            response = QueryResponse(
                index, error="internal: backend returned no response")
            responses[index] = response
        return response

    def plan(self, requests: Sequence[QueryRequest]) -> BatchPlan:
        """Expose the planner's decision for a batch (no execution)."""
        with self._critical_section():
            return plan_batch(self._engine, list(requests))

    # Execution itself lives in :mod:`repro.service.executor` — free
    # functions over the engine, shared verbatim with the mp backend's
    # worker processes.  The thin wrappers below keep the historical
    # private-method surface for tests and subclasses.
    def _execute_planned_group(self, analyst: str, view_name: str | None,
                               items: list[PlannedQuery],
                               responses: list) -> None:
        execute_planned_group(self._engine, analyst, view_name, items,
                              responses)

    def _execute_planned(self, analyst: str, item) -> QueryResponse:
        return execute_planned(self._engine, analyst, item)

    def _execute(self, analyst: str, index: int, request: QueryRequest,
                 is_group_by: bool | None,
                 statement=None) -> QueryResponse:
        return execute_request(self._engine, analyst, index, request,
                               is_group_by, statement=statement)

    def _account(self, session: Session, response: QueryResponse,
                 elapsed: float = 0.0) -> None:
        with self._stats_lock:
            self._account_locked(session, response)
            self.stats.busy_seconds += elapsed

    def _account_locked(self, session: Session,
                        response: QueryResponse) -> None:
        """Fold one response into session + service counters (stats lock
        held)."""
        session._record(response)
        self.stats.submitted += 1
        if not response.ok:
            if response.rejected:
                self.stats.rejected += 1
            else:
                self.stats.failed += 1
            return
        self.stats.answered += 1
        for answer in response.answers():
            self.stats._record_answer(session.analyst, answer)

    # -- reporting ------------------------------------------------------------
    def analyst_spent(self, analyst: str) -> float:
        """Epsilon the provenance table records for one analyst."""
        return self._engine.provenance.row_total(analyst)

    def bind_telemetry(self, registry) -> None:
        """Register scrape-time gauges on a
        :class:`repro.metrics.telemetry.TelemetryRegistry`.

        Everything is callback-backed: the scrape reads the same live
        counters :meth:`snapshot` serializes (service stats, synopsis
        cache, fast lane, shard manager, durability ledger), so
        ``/v1/metrics`` and ``/v1/snapshot`` can never disagree and the
        serving path pays no double bookkeeping.  Idempotent per
        registry only in the sense of adding sources — call it once,
        as ``ReproServer`` does.
        """
        stats = self.stats
        registry.gauge("repro_service_submitted_total",
                       "Queries accepted by the service",
                       lambda: stats.submitted)
        registry.gauge("repro_service_answered_total",
                       "Queries answered (incl. cache hits)",
                       lambda: stats.answered)
        registry.gauge("repro_service_rejected_total",
                       "Queries refused by budget constraints",
                       lambda: stats.rejected)
        registry.gauge("repro_service_failed_total",
                       "Queries that failed (translation, SQL, ...)",
                       lambda: stats.failed)
        registry.gauge("repro_service_batches_total",
                       "Planner batches executed",
                       lambda: stats.batches)
        registry.gauge("repro_fresh_releases_total",
                       "Answers that required a fresh noisy release",
                       lambda: stats.fresh_releases)
        # The spend family reads the provenance table itself at scrape
        # time: the table is the accounting of record, so the exposition
        # can never drift from it — not even by a float ulp — which is
        # what lets `repro audit --verify` demand *exact* equality
        # against an offline ledger fold.  The mechanism label is the
        # engine's (one mechanism per engine; the per-record classifier
        # in repro.metrics.audit provably agrees).
        provenance = self._engine.provenance
        mechanism = self._engine.mechanism

        def _spent_cells():
            label = mechanism.name
            return [({"analyst": analyst, "view": view,
                      "mechanism": label}, spent)
                    for analyst in provenance.analysts
                    for view in provenance.views
                    if (spent := provenance.get(analyst, view)) != 0.0]

        registry.counter_family(
            "repro_epsilon_spent_total",
            "Cumulative epsilon charged, per analyst/view/mechanism",
            _spent_cells)
        registry.gauge("repro_epsilon_row_total",
                       "Epsilon charged, per analyst (provenance row "
                       "totals)",
                       lambda: provenance.row_totals(),
                       expand_label="analyst")
        registry.gauge("repro_epsilon_table_total",
                       "Epsilon charged against the whole table",
                       lambda: self._engine.provenance.table_total())
        registry.gauge("repro_answer_cache_hit_rate",
                       "Fraction of answers served without a release",
                       lambda: stats.answer_cache_hit_rate)
        registry.gauge("repro_synopsis_cache_hit_rate",
                       "Synopsis store hit rate",
                       lambda: self.cache_stats.hit_rate)
        registry.gauge("repro_fast_lane_hits_total",
                       "Fast-lane hits (lock-free memoized answers)",
                       lambda: self._engine.fast_lane_counters()["hits"])
        registry.gauge("repro_fast_lane_hit_rate",
                       "Fast-lane hit rate over its probes",
                       lambda: self._engine.fast_lane_counters()
                       ["hit_rate"])
        registry.gauge("repro_open_sessions",
                       "Sessions currently open",
                       lambda: len(self._sessions))
        registry.gauge("repro_shards",
                       "Shard count (0 = global execution)",
                       lambda: (self.sharding.num_shards
                                if self.sharding else 0))
        statements = self._engine.statement_cache
        registry.gauge("repro_statement_cache_total",
                       "Compiled-statement cache lookups, by result",
                       lambda: {"hit": statements.counters()["hits"],
                                "miss": statements.counters()["misses"]},
                       expand_label="result")
        registry.gauge("repro_statement_cache_hit_rate",
                       "Compiled-statement cache hit rate",
                       lambda: statements.counters()["hit_rate"])
        registry.gauge("repro_statement_cache_entries",
                       "Entries in the compiled-statement cache",
                       lambda: statements.counters()["entries"])
        registry.gauge("repro_statement_cache_evictions_total",
                       "Compiled statements evicted by cost pressure",
                       lambda: statements.counters()["evictions"])
        registry.gauge("repro_compile_calls_total",
                       "Statement resolutions the engine performed "
                       "(the serving layers promise one per query)",
                       lambda: self._engine.compile_calls)
        routing = self._engine.registry
        registry.gauge("repro_view_routing_hits_total",
                       "Memoized view-routing decisions reused",
                       lambda: routing.routing_counters()["hits"])
        registry.gauge("repro_view_routing_hit_rate",
                       "View-routing cache hit rate",
                       lambda: routing.routing_counters()["hit_rate"])
        registry.gauge("repro_view_routing_total",
                       "Memoized view-routing lookups, by result",
                       lambda: {"hit": routing.routing_counters()["hits"],
                                "miss":
                                routing.routing_counters()["misses"]},
                       expand_label="result")
        registry.gauge("repro_view_routing_entries",
                       "Entries in the view-routing memo",
                       lambda: routing.routing_counters()["entries"])
        registry.gauge("repro_view_routing_generation",
                       "View-routing memo invalidation generation",
                       lambda: routing.routing_counters()["generation"])
        tracer = self.tracer
        registry.gauge("repro_traces_started_total",
                       "Request traces started",
                       lambda: tracer.counters()["started"])
        registry.gauge("repro_traces_retained",
                       "Finished traces held in the /v1/trace ring",
                       lambda: tracer.counters()["retained"])
        if self._backend_impl is not None:
            backend = self._backend_impl
            registry.gauge("repro_mp_workers",
                           "Forked worker processes (mp backend)",
                           lambda: backend.num_workers)
            registry.gauge("repro_mp_restarts_total",
                           "Worker processes respawned after a crash",
                           lambda: backend.restarts)
            registry.gauge("repro_mp_crashes_total",
                           "Worker crashes observed mid-conversation",
                           lambda: backend.crashes)
            registry.gauge("repro_mp_brokered_charges_total",
                           "Provenance charges brokered for workers",
                           lambda: backend.brokered_charges)
            registry.gauge("repro_mp_charge_rejections_total",
                           "Brokered charges the parent refused",
                           lambda: backend.charge_rejections)
            registry.gauge("repro_mp_charge_messages_total",
                           "Standalone per-charge pipe messages (0 under "
                           "coalesced settlement)",
                           lambda: backend.charge_messages)
            registry.gauge("repro_mp_charge_mismatches_total",
                           "Worker charge replays that diverged from the "
                           "authoritative ledger (unwound, respawned)",
                           lambda: backend.charge_mismatches)
            registry.gauge("repro_mp_conversations_total",
                           "Batch conversations dispatched to workers",
                           lambda: backend.conversations)
            registry.gauge("repro_mp_worker_incarnation",
                           "Per-shard worker incarnation (bumps on "
                           "respawn)",
                           lambda: {str(i): inc for i, inc in
                                    enumerate(backend.describe()
                                              ["incarnations"])},
                           expand_label="shard")
        if self.sharding is not None:
            sharding = self.sharding
            registry.gauge("repro_shard_groups_total",
                           "View groups dispatched to shards",
                           lambda: sharding.groups_dispatched)
            registry.gauge("repro_shard_parallel_batches_total",
                           "Group batches that ran on the worker pool",
                           lambda: sharding.parallel_batches)
        if self.audit is not None:
            trail = self.audit
            for window in trail.windows:
                registry.gauge("repro_epsilon_burn_rate_per_min",
                               "Epsilon per minute, per analyst, over a "
                               "sliding window (seconds, labelled)",
                               (lambda w=window: trail.burn_rates(w)),
                               expand_label="analyst",
                               window=f"{window:g}")
            registry.gauge("repro_exhaustion_seconds",
                           "Projected seconds until an analyst's budget "
                           "cap at the current burn rate (+Inf idle)",
                           lambda: trail.exhaustion(),
                           expand_label="analyst")
            registry.gauge("repro_table_exhaustion_seconds",
                           "Projected seconds until the table-level cap "
                           "(+Inf idle)",
                           lambda: trail.table_exhaustion())
            registry.gauge("repro_group_exhaustion_seconds",
                           "Projected seconds until a coalition cap "
                           "(Sec. 7.1 groups; absent without groups)",
                           lambda: trail.group_exhaustion(),
                           expand_label="group")
        if self.durability is not None:
            durability = self.durability
            registry.gauge("repro_ledger_seq",
                           "Last write-ahead ledger sequence number",
                           lambda: durability.ledger_seq)
            registry.gauge("repro_ledger_lag_records",
                           "Ledger records not yet folded into a "
                           "checkpoint",
                           lambda: durability.ledger_lag)
            registry.gauge("repro_ledger_segments",
                           "Sealed ledger segments on disk",
                           lambda: durability.sealed_segments())
            registry.gauge("repro_ledger_active_bytes",
                           "Bytes in the active ledger file",
                           lambda: durability.active_ledger_bytes())
            registry.gauge("repro_checkpoint_age_seconds",
                           "Seconds since the newest checkpoint fold "
                           "(+Inf before any)",
                           lambda: durability.checkpoint_age_seconds())
            registry.gauge("repro_recovery_replayed_records",
                           "Ledger records read by bind-time recovery",
                           lambda: durability.recovered_records())

    def snapshot(self) -> dict:
        """Point-in-time service metrics (service, cache, provenance).

        Strictly JSON-serializable — string keys and native scalars only —
        because the HTTP front-end's ``/v1/snapshot`` endpoint serializes
        it verbatim (regression-tested in ``tests/test_service.py``).
        """
        with self._stats_lock:
            service = self.stats.as_dict()
        with self._sessions_lock:
            open_sessions = len(self._sessions)
        return {
            "service": service,
            "synopsis_cache": {key: (float(value) if key == "hit_rate"
                                     else int(value))
                               for key, value
                               in self.cache_stats.as_dict().items()},
            "open_sessions": open_sessions,
            # Hot-path caches: the compiled-statement LRU (parse+compile
            # memoisation) and the memoized-answer fast lane.
            "compiled_statements": self._engine.statement_cache.counters(),
            "fast_lane": self._engine.fast_lane_counters(),
            "execution": self._execution,
            "shards": (self.sharding.num_shards if self.sharding else 0),
            "backend": (self._backend_impl.describe()
                        if self._backend_impl is not None
                        else {"mode": "threaded"}),
            # Satellite of the mp work: memoized view-routing decisions
            # (per registry generation) with hit counters.
            "view_routing": self._engine.registry.routing_counters(),
            "tracing": self.tracer.counters(),
            "closed": self._closed,
            # The same block the checkpoint file embeds — one builder,
            # one schema, so the live snapshot and the durable record
            # can never drift (see repro.persistence.schema).
            "provenance": provenance_summary(self._engine),
            "durability": (self.durability.describe()
                           if self.durability is not None
                           else {"enabled": False}),
            "audit": (self.audit.describe() if self.audit is not None
                      else {"enabled": False}),
        }


__all__ = ["BACKENDS", "DEFAULT_MAX_CACHED", "EXECUTION_MODES",
           "MAX_CLOSED_SESSIONS", "QueryService", "ServiceStats"]
