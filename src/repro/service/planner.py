"""Batched query planning: group by target view, strictest accuracy first.

The engine answers a query from an analyst's cached local synopsis whenever
that synopsis is already accurate enough (``MechanismBase._cached_answer``).
A batch submitted in arrival order squanders this: each time a *stricter*
query lands on a view, the synopsis must be refreshed again, paying the
translation search and noise sampling repeatedly.  The planner reorders a
batch so that, per target view, the most accurate requirement runs first —
one synopsis refresh then serves every remaining query on that view from
cache.  Reordering is sound because the engine's accounting is
order-insensitive for a fixed set of granted queries, and each query is
still answered at (or better than) its own requested accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.engine import DProvDB
from repro.db.sql.ast import SelectStatement
from repro.exceptions import ReproError
from repro.service.session import QueryRequest


@dataclass(frozen=True)
class PlannedQuery:
    """One batch entry with its routing decision.

    ``per_bin_target`` is the per-bin synopsis variance the request implies
    (smaller = stricter); ``math.inf`` marks requests that could not be
    planned (unknown view, parse error) — they sort last and surface their
    error at execution time.  For plain scalar queries the compiled
    ``view``/``query``/``target`` triple is kept so execution can go through
    :meth:`DProvDB.submit_compiled` without re-compiling; GROUP BY and AVG
    requests (``view is None``) take the engine's general path, carrying
    the full compiled ``entry`` so that path never re-resolves either —
    planning is the one and only ``compile_statement`` call per query.
    """

    index: int
    request: QueryRequest
    statement: SelectStatement | None
    view_name: str | None
    per_bin_target: float
    is_group_by: bool
    view: object | None = None
    query: object | None = None
    target: float | None = None
    entry: object | None = None

    @property
    def compiled(self) -> bool:
        return self.view is not None


@dataclass(frozen=True)
class BatchPlan:
    """Execution order plus the view grouping used to derive it."""

    ordered: tuple[PlannedQuery, ...]
    view_groups: dict[str, tuple[int, ...]]

    @property
    def num_views(self) -> int:
        return len(self.view_groups)


def _plan_one(engine: DProvDB, index: int, request: QueryRequest
              ) -> PlannedQuery:
    try:
        compiled = engine.compile_statement(request.sql)
    except ReproError:
        # Parse/compile failures are rare and surface their error at
        # execution time; re-resolve only to distinguish "unparseable"
        # (no statement at all) from "parsed but unanswerable".
        try:
            statement = engine._resolve(request.sql)
        except ReproError:
            return PlannedQuery(index, request, None, None, math.inf, False)
        return PlannedQuery(index, request, statement, None, math.inf,
                            statement.group_by != ())
    try:
        view = compiled.view
        if compiled.kind != "scalar":
            # GROUP BY / AVG take the engine's general path, but their
            # strictness key must still be a *per-bin* variance so it is
            # comparable with compiled scalar entries on the same view;
            # the cached entry carries the strictest transformed part.
            if compiled.strictest is None:
                per_bin = math.inf
            else:
                target = engine._accuracy_for(compiled.strictest,
                                              request.accuracy,
                                              request.epsilon, view)
                per_bin = compiled.strictest.per_bin_variance_for(target)
            return PlannedQuery(index, request, compiled.statement,
                                view.name, per_bin,
                                compiled.kind == "group_by",
                                entry=compiled)
        query = compiled.query
        target = engine._accuracy_for(query, request.accuracy,
                                      request.epsilon, view)
        return PlannedQuery(index, request, compiled.statement, view.name,
                            query.per_bin_variance_for(target), False,
                            view=view, query=query, target=target,
                            entry=compiled)
    except ReproError:
        return PlannedQuery(index, request, compiled.statement, None,
                            math.inf, compiled.kind == "group_by")


def plan_batch(engine: DProvDB, requests: list[QueryRequest]) -> BatchPlan:
    """Order ``requests`` view-by-view, strictest per-bin target first.

    Within a view the ordering is (ascending per-bin target, original
    index); views run in first-appearance order so unrelated queries keep
    rough arrival fairness.  Unplannable requests trail the batch.
    """
    planned = [_plan_one(engine, i, r) for i, r in enumerate(requests)]

    first_seen: dict[str | None, int] = {}
    for item in planned:
        first_seen.setdefault(item.view_name, item.index)
    ordered = sorted(planned, key=lambda p: (
        p.view_name is None,                 # unplannable last
        first_seen[p.view_name],             # views in arrival order
        p.per_bin_target,                    # strictest first inside a view
        p.index,
    ))

    groups: dict[str, list[int]] = {}
    for item in planned:
        if item.view_name is not None:
            groups.setdefault(item.view_name, []).append(item.index)
    return BatchPlan(tuple(ordered),
                     {view: tuple(ids) for view, ids in groups.items()})


__all__ = ["BatchPlan", "PlannedQuery", "plan_batch"]
