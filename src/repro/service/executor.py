"""Engine-level batch execution, shared by every service backend.

These are the request-to-response functions the threaded
:class:`repro.service.QueryService` historically carried as private
methods.  The multiprocessing backend (:mod:`repro.service.mp_backend`)
runs the *same* functions inside its worker processes — one code path,
two backends — so the execution semantics (batch fast lane, prefix rule,
error classification) cannot drift between them.

Everything here operates on a :class:`repro.core.engine.DProvDB` alone:
no service state, no session bookkeeping, no stats locks.  Callers own
accounting.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import DProvDB
from repro.db.sql.unparse import to_sql
from repro.exceptions import QueryRejected, ReproError
from repro.metrics import tracing
from repro.service.planner import PlannedQuery
from repro.service.session import Lineage, QueryRequest, QueryResponse


_attach = object.__setattr__


def _with_lineage(engine: DProvDB, analyst: str, response: QueryResponse,
                  source: str | None = None,
                  view: str | None = None) -> QueryResponse:
    """Attach a :class:`Lineage` derived from what just happened.

    Purely descriptive — built *after* the response exists, from the
    answers themselves plus the engine's thread-local source mark, so
    replay bit-equality on answers/ε is untouched.  ``source``/``view``
    override the derivation where the caller already knows the path
    (batch-lane hits, rejections).

    This runs once per answer: the response is always freshly
    constructed by our caller and has not escaped yet, so the lineage
    is attached in place rather than via ``dataclasses.replace``, the
    scalar shape skips the ``answers()`` tuple and the ε summation
    loop, and the :class:`Lineage` construction is positional — each
    measurably moves warm-path q/s on its own.
    """
    answer = response.answer
    if answer is not None:
        view = answer.view_name
        if source is None:
            source = engine.last_answer_source()
        epsilon = answer.epsilon_charged
    else:
        answers = response.answers()
        if answers:
            view = answers[0].view_name
            if source is None:
                source = engine.last_answer_source()
            epsilon = sum(a.epsilon_charged for a in answers)
        else:
            if source is None:
                source = "rejected" if response.rejected else "error"
            epsilon = 0.0
    mechanism = engine.mechanism
    trace = tracing.current_trace()
    _attach(response, "lineage", Lineage(
        view, source, epsilon, mechanism.name, mechanism.composition,
        mechanism.store.local_generation(analyst, view)
        if view is not None else 0,
        trace.trace_id if trace is not None else None,
    ))
    return response


def execute_request(engine: DProvDB, analyst: str, index: int,
                    request: QueryRequest, is_group_by: bool | None,
                    statement=None, compiled=None) -> QueryResponse:
    """Run one request against the engine (which self-locks per view).

    ``compiled`` is the already-resolved :class:`CompiledStatement` when
    the caller planned ahead; when absent and classification is needed,
    the one resolution made here is handed down to the engine so no
    submit path re-probes — each query compiles/probes exactly once.
    """
    # Prefer the raw SQL text when we have it: it is the compiled-
    # statement cache's key, so the engine skips re-parsing AND
    # re-compiling; a pre-resolved statement has no cheap cache key.
    sql = request.sql if isinstance(request.sql, str) \
        else (statement if statement is not None else request.sql)
    try:
        if is_group_by is None:
            if compiled is None and isinstance(sql, str):
                compiled = engine.compile_statement(sql)
            if compiled is not None:
                is_group_by = compiled.kind == "group_by"
            else:
                # Pre-resolved statements have no cache key; their
                # routing kind is a plain attribute read — compiling
                # here would only throw the work away.
                is_group_by = bool(sql.group_by)
        if not engine.thread_compiled:
            # Gate-baseline dispatch: forget the resolution so every
            # submit layer re-probes, as the pre-overhaul path did.
            compiled = None
        if is_group_by:
            groups = engine.submit_group_by(
                analyst, sql, accuracy=request.accuracy,
                epsilon=request.epsilon, compiled=compiled)
            return _with_lineage(engine, analyst,
                                 QueryResponse(index, groups=tuple(groups)))
        answer = engine.submit(analyst, sql,
                               accuracy=request.accuracy,
                               epsilon=request.epsilon,
                               compiled=compiled)
        return _with_lineage(engine, analyst,
                             QueryResponse(index, answer=answer))
    except QueryRejected as exc:
        return _with_lineage(engine, analyst,
                             QueryResponse(index, error=str(exc),
                                           rejected=True))
    except ReproError as exc:
        return _with_lineage(engine, analyst,
                             QueryResponse(index, error=str(exc)))


def execute_planned(engine: DProvDB, analyst: str,
                    item: PlannedQuery) -> QueryResponse:
    """Run one planned entry, using the compiled fast path when the
    planner kept the (view, query, target) triple."""
    if not item.compiled:
        return execute_request(engine, analyst, item.index, item.request,
                               is_group_by=item.is_group_by,
                               statement=item.statement,
                               compiled=item.entry
                               if engine.thread_compiled else None)
    try:
        answer = engine.submit_compiled(
            analyst, item.statement, item.view, item.query, item.target,
            sql_text=(item.request.sql
                      if isinstance(item.request.sql, str) else None))
        return _with_lineage(engine, analyst,
                             QueryResponse(item.index, answer=answer))
    except QueryRejected as exc:
        return _with_lineage(engine, analyst,
                             QueryResponse(item.index, error=str(exc),
                                           rejected=True),
                             view=item.view.name)
    except ReproError as exc:
        return _with_lineage(engine, analyst,
                             QueryResponse(item.index, error=str(exc)),
                             view=item.view.name)


def execute_planned_group(engine: DProvDB, analyst: str,
                          view_name: str | None,
                          items: list[PlannedQuery],
                          responses: list,
                          on_item: Callable[[int], None] | None = None
                          ) -> None:
    """Run one per-view group of a planned batch, filling ``responses``.

    The first (strictest) entry always takes the normal path — it is
    the one that may refresh the synopsis for everyone behind it.
    The rest first try the engine's batch lane: one versioned cached
    lookup answers the maximal adequate prefix of compiled scalar
    entries without any view/provenance locking; whatever the lane
    declines (inadequate accuracy, GROUP BY / AVG shapes, generation
    races) runs through the normal path in plan order, exactly as a
    fast-lane-disabled replay would.

    ``on_item`` (if given) is invoked with a running count after every
    response lands — the multiprocessing backend's fault-injection hook
    (a test worker SIGKILLs itself after N answers to exercise the
    parent's crash recovery).

    Tracing reports per *group*, not per query: one ``decisions`` event
    tallies the outcomes (fresh/cached/fast_lane/...) from the lineage
    already attached to each response, so the per-answer hot path
    carries no span machinery (fresh releases and rejections get their
    own spans inside the engine — they are rare and expensive).
    """
    done = 0

    def note() -> None:
        nonlocal done
        done += 1
        if on_item is not None:
            on_item(done)

    responses[items[0].index] = execute_planned(engine, analyst, items[0])
    note()
    rest = items[1:]
    if not rest:
        _note_group_decisions(view_name, items, responses)
        return
    lane: list[PlannedQuery] = []
    if view_name is not None and engine.fast_lane:
        for item in rest:
            if not item.compiled:
                break
            lane.append(item)
    if lane:
        sql_texts = [item.request.sql
                     if isinstance(item.request.sql, str)
                     else to_sql(item.statement) for item in lane]
        answers = engine.answer_batch_from_cache(
            analyst, lane[0].view,
            [(item.query, item.target) for item in lane], sql_texts)
        for item, answer in zip(lane, answers):
            if answer is not None:
                responses[item.index] = _with_lineage(
                    engine, analyst,
                    QueryResponse(item.index, answer=answer),
                    source="fast_lane")
                note()
    for item in rest:
        if responses[item.index] is None:
            responses[item.index] = execute_planned(engine, analyst, item)
            note()
    _note_group_decisions(view_name, items, responses)


def _note_group_decisions(view_name: str | None,
                          items: list[PlannedQuery],
                          responses: list) -> None:
    """One aggregated trace event per executed group.  Derived post-hoc
    from the responses' lineage, so the zero-trace path pays exactly one
    ``ContextVar`` read per group and the per-query path pays nothing.
    """
    if tracing.current_trace() is None:
        return
    tally: dict[str, int] = {}
    for item in items:
        response = responses[item.index]
        if response is None or response.lineage is None:
            continue
        source = response.lineage.source
        tally[source] = tally.get(source, 0) + 1
    if tally:
        tracing.event("decisions", view=view_name, **tally)


__all__ = ["execute_planned", "execute_planned_group", "execute_request"]
