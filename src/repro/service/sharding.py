"""View sharding: stable view→shard routing and the parallel batch executor.

The sharded :class:`repro.service.QueryService` no longer funnels
submissions through one global critical section — budget atomicity lives in
:meth:`repro.core.provenance.ProvenanceTable.reserve` and synopsis
consistency in the engine's per-view sections
(:meth:`repro.core.engine.DProvDB.view_section`).  What remains for the
service is *dispatch*: a batch planned into per-view groups should execute
groups on different views concurrently.  :class:`ShardManager` provides
that: views map to one of ``num_shards`` shards by a stable hash, each
shard's groups run sequentially (so two views in one shard never contend
for the engine's locks at the same time), and distinct shards run in
parallel on a bounded worker pool.

Deadlock-freedom: pool tasks only ever acquire engine view locks (in the
engine's sorted-name order) and never wait on other tasks, while the
dispatching thread holds no locks while waiting for the pool — so every
dispatch terminates.
"""

from __future__ import annotations

import os
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ReproError

#: Default shard count: eight ways matches the benchmark's thread count
#: and bounds the pool; raise it for wider view sets on bigger hosts.
DEFAULT_NUM_SHARDS = 8

T = TypeVar("T")


class ShardManager:
    """Routes per-view work onto a bounded worker pool.

    Parameters
    ----------
    num_shards:
        Number of shards (= maximum concurrently executing view groups
        and worker threads).  ``1`` degenerates to inline execution.
    """

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS, *,
                 force_pool: bool = False) -> None:
        if num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        # Dispatching to the pool only pays off when shards can actually
        # run in parallel; on a single-CPU host the futures and thread
        # wake-ups are pure overhead, so groups run inline there (the
        # view→shard routing and all locking semantics are identical).
        self._use_pool = force_pool or (
            num_shards > 1 and (os.cpu_count() or 1) > 1)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()
        self._closed = False
        #: Dispatch counters (telemetry): total view groups routed, and
        #: how many group batches actually fanned out on the pool.
        self._counter_lock = threading.Lock()
        self.groups_dispatched = 0
        self.parallel_batches = 0

    # -- routing ---------------------------------------------------------------
    def shard_of(self, view_name: str | None) -> int:
        """Stable shard index for a view (hash-based, process-independent).

        ``None`` (unplannable work) routes to shard 0.
        """
        if view_name is None:
            return 0
        return zlib.crc32(view_name.encode("utf-8")) % self.num_shards

    # -- dispatch --------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._closed:
                raise ReproError("ShardManager is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_shards,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def run_view_groups(self, groups: Sequence[tuple[str | None, Iterable[T]]],
                        fn: Callable[[T], None]) -> None:
        """Execute ``fn(item)`` for every item of every ``(view, items)`` group.

        Items within one group run in order (the planner's strictest-first
        order must be preserved for the cache economics); groups falling
        into the same shard run sequentially; groups in distinct shards
        run concurrently on the pool.  ``fn`` is expected to capture its
        own results/errors (the service stores responses by index); a
        non-``ReproError`` exception escaping ``fn`` is re-raised here
        after all shards finish, so no work is silently dropped.
        """
        def per_item(view_name: str | None, items: Iterable[T]) -> None:
            for item in items:
                fn(item)

        self.run_groups(groups, per_item)

    def run_groups(self, groups: Sequence[tuple[str | None, Iterable[T]]],
                   group_fn: Callable[[str | None, Iterable[T]], None]
                   ) -> None:
        """Execute ``group_fn(view_name, items)`` once per group.

        Same routing and error contract as :meth:`run_view_groups`, but
        the callee receives whole groups — the granularity the service's
        batched fast lane wants (one versioned cached lookup can answer a
        group's tail in a single pass).
        """
        by_shard: dict[int, list[tuple[str | None, Iterable[T]]]] = {}
        for view_name, items in groups:
            by_shard.setdefault(self.shard_of(view_name), []).append(
                (view_name, items))

        def run_shard(shard_groups: list[tuple[str | None,
                                               Iterable[T]]]) -> None:
            for view_name, items in shard_groups:
                group_fn(view_name, items)

        if len(by_shard) <= 1 or not self._use_pool:
            with self._counter_lock:
                self.groups_dispatched += len(groups)
            for shard_groups in by_shard.values():
                run_shard(shard_groups)
            return

        with self._counter_lock:
            self.groups_dispatched += len(groups)
            self.parallel_batches += 1
        pool = self._ensure_pool()
        futures = [pool.submit(run_shard, shard_groups)
                   for shard_groups in by_shard.values()]
        errors = []
        for future in futures:
            exc = future.exception()
            if exc is not None:
                errors.append(exc)
        if errors:
            raise errors[0]

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent); pending work completes."""
        with self._pool_guard:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


__all__ = ["DEFAULT_NUM_SHARDS", "ShardManager"]
