"""Full-domain histogram views (paper Definition 16).

A view is defined over the *declared* domain of its attributes, never the
active domain, so a synopsis reveals nothing about which values are absent —
this is what makes the DP ``GROUP BY`` treatment of Appendix D sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.db.schema import Schema
from repro.dp.sensitivity import Neighboring, histogram_l2_sensitivity
from repro.exceptions import SchemaError


@dataclass(frozen=True)
class HistogramView:
    """A (possibly multi-way) full-domain histogram over one relation.

    Attributes
    ----------
    name:
        Unique view identifier (rows of the provenance table's column axis).
    table:
        Relation the view is defined over.
    attributes:
        Attribute names; the view is their full cross product.
    schema:
        Schema of the relation, used for domain arithmetic.
    """

    name: str
    table: str
    attributes: tuple[str, ...]
    schema: Schema

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("view needs at least one attribute")
        for attr in self.attributes:
            self.schema.attribute(attr)  # validate

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.schema.domain(a).size for a in self.attributes)

    @property
    def size(self) -> int:
        """Number of bins (flattened)."""
        return int(np.prod(self.shape))

    def sensitivity(self, neighboring: Neighboring = Neighboring.UNBOUNDED) -> float:
        """L2 sensitivity of the exact histogram."""
        return histogram_l2_sensitivity(neighboring)

    def materialize(self, database: Database) -> np.ndarray:
        """Exact flattened bin counts (curator-side only)."""
        table = database.table(self.table)
        return table.histogram(self.attributes).reshape(-1).astype(np.float64)

    def axis_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} not in view {self.name!r}"
            ) from None


def attribute_views(schema: Schema, table: str,
                    attributes: tuple[str, ...]) -> list[HistogramView]:
    """One single-attribute view per name — the paper's default view set."""
    return [
        HistogramView(name=f"{table}.{attr}", table=table,
                      attributes=(attr,), schema=schema)
        for attr in attributes
    ]


__all__ = ["HistogramView", "attribute_views"]
