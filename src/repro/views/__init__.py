"""Histogram views and query transformation.

DProvDB answers queries from *views* rather than from the database: a view is
a full-domain (contingency-table) histogram over one or more attributes, a
*synopsis* is a noisy materialisation of a view, and incoming SQL is compiled
into *linear queries* — weight vectors over the view's bins (the paper's
``q(D) = q̂(V(D))`` answerability, Def. 6).
"""

from repro.views.histogram import HistogramView
from repro.views.linear import LinearQuery
from repro.views.transform import transform, transform_group_by
from repro.views.registry import ViewRegistry

__all__ = [
    "HistogramView",
    "LinearQuery",
    "ViewRegistry",
    "transform",
    "transform_group_by",
]
