"""Hierarchical (dyadic) views for range queries.

The paper's future-work list ("system utility optimization") proposes more
careful cached-synopsis structures, e.g. cumulative histogram views.  This
module implements the classic dyadic-tree view: the view's bins are the
nodes of a complete binary tree over the attribute's domain, each node
storing the count of its dyadic interval.  Any range decomposes into at most
``2 log2(m)`` canonical nodes, so a wide range query has weight norm
``O(log m)`` instead of ``O(width)`` — at the cost of a larger view
sensitivity (one tuple touches a root-to-leaf path: ``sqrt(log2(m) + 1)``).

The registry's cost-based selection (``sensitivity^2 * ||w||^2``) then picks
the flat histogram for narrow queries and the dyadic view for wide ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.db.schema import IntegerDomain, Schema
from repro.db.sql.ast import Between, Comparison, SelectStatement
from repro.dp.sensitivity import Neighboring
from repro.exceptions import SchemaError, UnanswerableQuery
from repro.views.linear import LinearQuery


@dataclass(frozen=True)
class HierarchicalView:
    """A dyadic-interval tree over one integer attribute.

    Storage layout is the standard segment-tree array: with ``m`` the
    smallest power of two at least the domain size, node ``1`` is the root,
    node ``i``'s children are ``2i`` and ``2i+1``, and leaves ``m..2m-1``
    map to domain bins (padded bins are structurally zero).  The view vector
    has length ``2m`` (index 0 unused).
    """

    name: str
    table: str
    attribute: str
    schema: Schema

    def __post_init__(self) -> None:
        domain = self.schema.domain(self.attribute)
        if not isinstance(domain, IntegerDomain):
            raise SchemaError(
                f"hierarchical view needs an integer attribute, "
                f"got {self.attribute!r}"
            )

    # -- geometry -------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        return self.schema.domain(self.attribute).size

    @property
    def leaf_count(self) -> int:
        """``m``: domain size rounded up to a power of two."""
        return 1 << max(0, (self.domain_size - 1).bit_length())

    @property
    def size(self) -> int:
        """Length of the flattened view vector (``2m``)."""
        return 2 * self.leaf_count

    @property
    def height(self) -> int:
        """Number of levels (root to leaf inclusive)."""
        return int(math.log2(self.leaf_count)) + 1

    @property
    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    def sensitivity(self, neighboring: Neighboring = Neighboring.UNBOUNDED
                    ) -> float:
        """One tuple touches its full leaf-to-root path."""
        path = math.sqrt(self.height)
        if neighboring is Neighboring.BOUNDED:
            return math.sqrt(2.0) * path
        return path

    # -- materialisation ----------------------------------------------------------
    def materialize(self, database: Database) -> np.ndarray:
        """Exact node counts (curator-side only)."""
        table = database.table(self.table)
        histogram = table.histogram((self.attribute,)).astype(np.float64)
        m = self.leaf_count
        nodes = np.zeros(2 * m)
        nodes[m:m + histogram.size] = histogram
        for i in range(m - 1, 0, -1):
            nodes[i] = nodes[2 * i] + nodes[2 * i + 1]
        return nodes

    # -- query compilation -----------------------------------------------------------
    def decompose(self, low_bin: int, high_bin: int) -> list[int]:
        """Canonical dyadic nodes covering bins ``[low_bin, high_bin]``."""
        if not 0 <= low_bin <= high_bin < self.domain_size:
            raise UnanswerableQuery(
                f"bin range [{low_bin}, {high_bin}] outside domain"
            )
        m = self.leaf_count
        left = low_bin + m
        right = high_bin + m + 1
        nodes: list[int] = []
        while left < right:
            if left & 1:
                nodes.append(left)
                left += 1
            if right & 1:
                right -= 1
                nodes.append(right)
            left >>= 1
            right >>= 1
        return sorted(nodes)

    def _range_of(self, statement: SelectStatement) -> tuple[int, int]:
        """Extract the single range predicate over this view's attribute."""
        if statement.table != self.table:
            raise UnanswerableQuery(
                f"query targets {statement.table!r}, view is over {self.table!r}"
            )
        if statement.group_by:
            raise UnanswerableQuery("hierarchical views answer scalar queries")
        if len(statement.aggregates) != 1 or \
                statement.aggregates[0].func != "COUNT":
            raise UnanswerableQuery("hierarchical views answer COUNT queries")
        domain = self.schema.domain(self.attribute)
        low, high = domain.low, domain.high
        for cond in statement.predicate.conditions:
            if cond.column != self.attribute:
                raise UnanswerableQuery(
                    f"predicate column {cond.column!r} not covered"
                )
            if isinstance(cond, Between):
                low = max(low, int(math.ceil(cond.low)))
                high = min(high, int(math.floor(cond.high)))
            elif isinstance(cond, Comparison):
                value = cond.value
                if cond.op == "=":
                    low, high = max(low, int(value)), min(high, int(value))
                elif cond.op == ">=":
                    low = max(low, int(math.ceil(value)))
                elif cond.op == ">":
                    low = max(low, int(math.floor(value)) + 1)
                elif cond.op == "<=":
                    high = min(high, int(math.floor(value)))
                elif cond.op == "<":
                    high = min(high, int(math.ceil(value)) - 1)
                else:  # != breaks contiguity
                    raise UnanswerableQuery(
                        "hierarchical views need contiguous ranges"
                    )
            else:
                raise UnanswerableQuery(
                    "hierarchical views need range predicates"
                )
        if high < low:
            raise UnanswerableQuery("predicate selects no bins of the view")
        return low - domain.low, high - domain.low  # bin indices

    def answerable(self, statement: SelectStatement) -> bool:
        try:
            self._range_of(statement)
            return True
        except UnanswerableQuery:
            return False

    def to_linear(self, statement: SelectStatement) -> LinearQuery:
        """Compile a contiguous COUNT range into node-indicator weights."""
        low_bin, high_bin = self._range_of(statement)
        weights = np.zeros(self.size)
        weights[self.decompose(low_bin, high_bin)] = 1.0
        return LinearQuery(self.name, weights, label="count(range)")


def hierarchical_view(schema: Schema, table: str,
                      attribute: str) -> HierarchicalView:
    """Convenience constructor with the canonical naming scheme."""
    return HierarchicalView(f"{table}.{attribute}#dyadic", table, attribute,
                            schema)


__all__ = ["HierarchicalView", "hierarchical_view"]
