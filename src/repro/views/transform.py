"""Query transformation: SQL -> linear query over a view (Def. 6).

A statement is *answerable* over a view ``V`` when

* it targets the view's relation;
* every predicate column is one of the view's attributes;
* the aggregate is ``COUNT(*)`` (indicator weights) or ``SUM``/``AVG`` over a
  numeric view attribute (value-weighted bins, optionally clipped per the
  paper's Appendix D).

``GROUP BY`` over view attributes is compiled to one linear query per group
bin (full-domain semantics, so absent values appear as noisy-zero bins).
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import CategoricalDomain, Domain, IntegerDomain
from repro.db.sql.ast import (
    Aggregate,
    Between,
    Comparison,
    Condition,
    InList,
    SelectStatement,
)
from repro.exceptions import UnanswerableQuery
from repro.views.histogram import HistogramView
from repro.views.linear import LinearQuery


def is_answerable(statement: SelectStatement, view: HistogramView) -> bool:
    """Full answerability check (Def. 6).

    Structural coverage (table, predicate/aggregate columns) plus, for
    scalar statements, bin alignment: a range that cuts through a
    bucketised bin cannot be answered exactly and makes the view
    inapplicable.  GROUP BY statements are checked structurally only
    (their per-group compilation happens in :func:`transform_group_by`).
    """
    try:
        _check_answerable(statement, view)
        if not statement.group_by:
            transform(statement, view)
        return True
    except UnanswerableQuery:
        return False


def _check_answerable(statement: SelectStatement, view: HistogramView) -> None:
    if statement.table != view.table:
        raise UnanswerableQuery(
            f"query targets {statement.table!r}, view is over {view.table!r}"
        )
    view_attrs = set(view.attributes)
    for column in statement.predicate.columns():
        if column not in view_attrs:
            raise UnanswerableQuery(
                f"predicate column {column!r} not covered by view {view.name!r}"
            )
    for key in statement.group_by:
        if key not in view_attrs:
            raise UnanswerableQuery(
                f"GROUP BY key {key!r} not covered by view {view.name!r}"
            )
    if len(statement.aggregates) != 1:
        raise UnanswerableQuery("view transformation supports one aggregate")
    agg = statement.aggregates[0]
    if agg.func == "COUNT":
        return
    if agg.func in ("SUM", "AVG"):
        if agg.column not in view_attrs:
            raise UnanswerableQuery(
                f"{agg.func} column {agg.column!r} not covered by view"
            )
        if not isinstance(view.schema.domain(agg.column), IntegerDomain):
            raise UnanswerableQuery(f"{agg.func} needs a numeric attribute")
        return
    raise UnanswerableQuery(f"aggregate {agg.func} not answerable over views")


def _is_plain_number(value) -> bool:
    """Numeric operand the vectorized mask path handles (bools keep the
    scalar path's python-equality semantics)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _evaluate_array(values: np.ndarray, cond: Condition) -> np.ndarray:
    """Vectorized condition evaluation over an array of bin values."""
    if isinstance(cond, Comparison):
        ops = {
            "=": np.equal, "!=": np.not_equal,
            "<": np.less, "<=": np.less_equal,
            ">": np.greater, ">=": np.greater_equal,
        }
        return ops[cond.op](values, cond.value)
    if isinstance(cond, Between):
        return (cond.low <= values) & (values <= cond.high)
    if isinstance(cond, InList):
        return np.isin(values, list(cond.values))
    raise UnanswerableQuery(  # pragma: no cover - parser limited
        f"unsupported condition {type(cond).__name__}"
    )


def _integer_bin_mask(domain: IntegerDomain, cond: Condition,
                      ordered: bool) -> np.ndarray | None:
    """Vectorized mask over an integer domain's bins.

    Returns ``None`` when a non-numeric operand needs the scalar path's
    python-equality semantics.  Semantics (including the partial-overlap
    rejections for ``bin_size > 1``) match the scalar path exactly —
    this is the compile hot loop, evaluated once per domain value before
    vectorization.
    """
    if isinstance(cond, Comparison):
        if not _is_plain_number(cond.value):
            return None
    elif isinstance(cond, Between):
        if not (_is_plain_number(cond.low) and _is_plain_number(cond.high)):
            return None
    elif isinstance(cond, InList):
        if not all(_is_plain_number(v) for v in cond.values):
            return None
    else:
        return None

    lows = domain.low + np.arange(domain.size, dtype=np.int64) \
        * domain.bin_size
    if domain.bin_size == 1:
        return _evaluate_array(lows, cond)

    highs = np.minimum(lows + domain.bin_size - 1, domain.high)
    if ordered:
        if isinstance(cond, Between):
            # Endpoint agreement is NOT sound for intervals: BETWEEN 3
            # AND 4 inside bin [0, 9] fails at both endpoints yet covers
            # interior values.  Use containment directly: a bin is
            # included iff fully inside the interval, excluded iff
            # disjoint from it, misaligned otherwise.
            if cond.low > cond.high:
                # Empty interval: matches nothing, cleanly excluded
                # (same as the bin_size == 1 path).
                return np.zeros(domain.size, dtype=bool)
            all_in = (cond.low <= lows) & (highs <= cond.high)
            disjoint = (cond.high < lows) | (cond.low > highs)
            partial = ~(all_in | disjoint)
            if partial.any():
                i = int(np.argmax(partial))
                raise UnanswerableQuery(
                    f"predicate on {cond.column!r} is not aligned with "
                    f"the view's bin boundaries (bin [{int(lows[i])}, "
                    f"{int(highs[i])}])"
                )
            return all_in
        # Monotone comparisons: the truth set is a half-line, so a bin
        # straddling the threshold disagrees at its endpoints.
        in_low = _evaluate_array(lows, cond)
        in_high = _evaluate_array(highs, cond)
        mismatch = in_low != in_high
        if mismatch.any():
            i = int(np.argmax(mismatch))
            raise UnanswerableQuery(
                f"predicate on {cond.column!r} is not aligned with the "
                f"view's bin boundaries (bin [{int(lows[i])}, "
                f"{int(highs[i])}])"
            )
        return in_low

    # Set-membership over bucketised bins: per-bin count of satisfying
    # values; all-in -> True, all-out -> False, partial -> unanswerable.
    widths = highs - lows + 1
    if isinstance(cond, InList):
        targets = np.unique([v for v in cond.values
                             if domain.low <= v <= domain.high])
        satisfied = (np.searchsorted(targets, highs, side="right")
                     - np.searchsorted(targets, lows, side="left"))
    elif cond.op == "=":
        satisfied = ((lows <= cond.value)
                     & (cond.value <= highs)).astype(np.int64)
    else:  # "!="
        excluded = ((lows <= cond.value)
                    & (cond.value <= highs)).astype(np.int64)
        satisfied = widths - excluded
    full = satisfied == widths
    partial = ~full & (satisfied > 0)
    if partial.any():
        i = int(np.argmax(partial))
        raise UnanswerableQuery(
            f"predicate on {cond.column!r} selects part of a bucketised "
            f"bin [{int(lows[i])}, {int(highs[i])}]"
        )
    return full


def _bin_mask_for_condition(domain: Domain, cond: Condition) -> np.ndarray:
    """Inclusion vector for one condition over one attribute's bins.

    For integer domains with ``bin_size > 1`` a bin is included only when
    its *entire* value range satisfies the condition; a partial overlap
    makes the query unanswerable over this view (bin-misaligned ranges
    cannot be answered exactly from bucketised counts — Appendix D's
    discretisation caveat).

    Integer domains with numeric operands take a vectorized path (one
    numpy comparison over the domain instead of a python loop per bin);
    categorical domains and exotic operands keep the scalar loop below,
    whose semantics the vectorized path mirrors exactly.
    """
    is_wide_integer = (isinstance(domain, IntegerDomain)
                       and domain.bin_size > 1)

    def evaluate(value) -> bool:
        if isinstance(cond, Comparison):
            ops = {
                "=": lambda v: v == cond.value,
                "!=": lambda v: v != cond.value,
                "<": lambda v: v < cond.value,
                "<=": lambda v: v <= cond.value,
                ">": lambda v: v > cond.value,
                ">=": lambda v: v >= cond.value,
            }
            return bool(ops[cond.op](value))
        if isinstance(cond, Between):
            return bool(cond.low <= value <= cond.high)
        if isinstance(cond, InList):
            return value in set(cond.values)
        raise UnanswerableQuery(  # pragma: no cover - parser limited
            f"unsupported condition {type(cond).__name__}"
        )

    ordered = isinstance(cond, Between) or (
        isinstance(cond, Comparison) and cond.op in ("<", "<=", ">", ">=")
    )
    if ordered and isinstance(domain, CategoricalDomain):
        raise UnanswerableQuery(
            f"ordering comparison on categorical column {cond.column!r}"
        )

    if isinstance(domain, IntegerDomain):
        vectorized = _integer_bin_mask(domain, cond, ordered)
        if vectorized is not None:
            return vectorized

    def wide_bin_inclusion(low: int, high: int) -> bool:
        """All-in -> True, all-out -> False, partial -> unanswerable."""
        if ordered:
            if isinstance(cond, Between):
                # Containment, not endpoint agreement: an interval lying
                # strictly inside the bin fails at both endpoints yet
                # covers interior values (same rule as the vectorized
                # path in _integer_bin_mask).
                if cond.low > cond.high:
                    return False  # empty interval: cleanly excluded
                all_in = cond.low <= low and high <= cond.high
                disjoint = cond.high < low or cond.low > high
                if not (all_in or disjoint):
                    raise UnanswerableQuery(
                        f"predicate on {cond.column!r} is not aligned "
                        f"with the view's bin boundaries "
                        f"(bin [{low}, {high}])"
                    )
                return all_in
            in_low, in_high = evaluate(low), evaluate(high)
            if in_low != in_high:
                raise UnanswerableQuery(
                    f"predicate on {cond.column!r} is not aligned with the "
                    f"view's bin boundaries (bin [{low}, {high}])"
                )
            return in_low
        # Set-membership conditions: count how many bin values satisfy.
        if isinstance(cond, (Comparison, InList)):
            if isinstance(cond, InList):
                targets = {v for v in cond.values
                           if isinstance(v, (int, float))
                           and low <= v <= high}
                satisfied = len(targets)
            elif cond.op == "=":
                satisfied = 1 if low <= cond.value <= high else 0
            else:  # "!="
                excluded = 1 if low <= cond.value <= high else 0
                satisfied = (high - low + 1) - excluded
            bin_width = high - low + 1
            if satisfied == 0:
                return False
            if satisfied == bin_width:
                return True
            raise UnanswerableQuery(
                f"predicate on {cond.column!r} selects part of a bucketised "
                f"bin [{low}, {high}]"
            )
        raise UnanswerableQuery(  # pragma: no cover
            f"unsupported condition {type(cond).__name__}"
        )

    mask = np.zeros(domain.size, dtype=bool)
    for i in range(domain.size):
        if is_wide_integer:
            low, high = domain.bin_bounds(i)
            mask[i] = wide_bin_inclusion(low, high)
        else:
            mask[i] = evaluate(domain.value_of(i))
    return mask


def _condition_bin_mask(domain: Domain, conditions: list[Condition]) -> np.ndarray:
    """Boolean inclusion vector over one attribute's bins (conjunction)."""
    mask = np.ones(domain.size, dtype=bool)
    for cond in conditions:
        mask &= _bin_mask_for_condition(domain, cond)
    return mask


def _indicator(statement: SelectStatement, view: HistogramView) -> np.ndarray:
    """Flattened 0/1 inclusion weights for the predicate over the view grid."""
    per_axis: list[np.ndarray] = []
    for attr in view.attributes:
        conditions = [c for c in statement.predicate.conditions if c.column == attr]
        per_axis.append(
            _condition_bin_mask(view.schema.domain(attr), conditions).astype(np.float64)
        )
    grid = per_axis[0]
    for axis_mask in per_axis[1:]:
        grid = np.multiply.outer(grid, axis_mask)
    return grid.reshape(-1)


def _value_weights(view: HistogramView, column: str,
                   clip: tuple[float, float] | None) -> np.ndarray:
    """Per-bin representative values of ``column``, optionally clipped."""
    domain = view.schema.domain(column)
    axis = view.axis_of(column)
    if isinstance(domain, IntegerDomain):
        values = (domain.low
                  + np.arange(domain.size, dtype=np.float64)
                  * domain.bin_size)
    else:  # pragma: no cover - SUM/AVG require integer attributes
        values = np.array([float(domain.value_of(i))
                           for i in range(domain.size)])
    if clip is not None:
        lower, upper = clip
        if upper <= lower:
            raise UnanswerableQuery(f"invalid clip bounds [{lower}, {upper}]")
        values = np.clip(values, lower, upper)
    # Broadcast along the view grid so each bin carries its column value.
    shape = [1] * len(view.shape)
    shape[axis] = domain.size
    grid = np.broadcast_to(values.reshape(shape), view.shape)
    return np.ascontiguousarray(grid).reshape(-1)


def transform(statement: SelectStatement, view: HistogramView,
              clip: tuple[float, float] | None = None) -> LinearQuery:
    """Compile a scalar statement into a :class:`LinearQuery` over ``view``.

    ``AVG`` is compiled as its SUM numerator — callers divide by a noisy
    count (post-processing); see :func:`transform_avg_parts`.
    """
    _check_answerable(statement, view)
    if statement.group_by:
        raise UnanswerableQuery(
            "use transform_group_by for GROUP BY statements"
        )
    agg = statement.aggregates[0]
    indicator = _indicator(statement, view)
    if agg.func == "COUNT":
        weights = indicator
    else:  # SUM or AVG numerator
        weights = indicator * _value_weights(view, agg.column, clip)
    if not np.any(weights):
        # An all-zero query is answerable trivially but meaningless; treat as
        # an empty-support linear query the caller may answer with 0 noise...
        # except variance calibration needs support, so reject it instead.
        raise UnanswerableQuery("predicate selects no bins of the view")
    return LinearQuery(view.name, weights, label=agg.label())


def transform_avg_parts(statement: SelectStatement, view: HistogramView,
                        clip: tuple[float, float] | None = None
                        ) -> tuple[LinearQuery, LinearQuery]:
    """(numerator SUM, denominator COUNT) pair for an AVG statement."""
    agg = statement.aggregates[0]
    if agg.func != "AVG":
        raise UnanswerableQuery("transform_avg_parts requires an AVG aggregate")
    sum_stmt = SelectStatement(
        (Aggregate("SUM", agg.column),), statement.table, statement.predicate
    )
    count_stmt = SelectStatement(
        (Aggregate("COUNT", None),), statement.table, statement.predicate
    )
    return transform(sum_stmt, view, clip), transform(count_stmt, view)


def transform_group_by(statement: SelectStatement, view: HistogramView
                       ) -> list[tuple[tuple, LinearQuery]]:
    """One linear query per group over the *full domain* of the keys.

    Returns ``[(group_key_values, LinearQuery), ...]`` covering every
    combination of the GROUP BY keys' domains — the DP-safe ``GROUP BY*``
    semantics of Appendix D.
    """
    _check_answerable(statement, view)
    if not statement.group_by:
        raise UnanswerableQuery("statement has no GROUP BY keys")
    agg = statement.aggregates[0]
    if agg.func not in ("COUNT", "SUM"):
        raise UnanswerableQuery(f"GROUP BY with {agg.func} not supported")

    base = _indicator(statement, view)
    # One vectorized scatter replaces the per-group selector grids: each
    # bin belongs to exactly one group (the combination of its key-axis
    # coordinates), so the full weight matrix is built in one pass.  The
    # per-bin weights are identical to the old selector-product path —
    # a selector entry is exactly 1.0 on the group's slice and 0.0 off
    # it, so multiplying by it either preserves the weight bit-exactly
    # or zeroes it.
    if agg.func == "SUM":
        base = base * _value_weights(view, agg.column, None)

    key_domains = [view.schema.domain(k) for k in statement.group_by]
    key_axes = [view.axis_of(k) for k in statement.group_by]
    sizes = [d.size for d in key_domains]
    num_bins = base.size
    # Per-bin coordinate along each GROUP BY axis, flattened to match
    # ``base``; their ravelled combination is the bin's group id.
    coords = []
    for axis, domain in zip(key_axes, key_domains):
        shape = [1] * len(view.shape)
        shape[axis] = domain.size
        axis_index = np.broadcast_to(
            np.arange(domain.size).reshape(shape), view.shape)
        coords.append(axis_index.reshape(-1))
    group_of_bin = np.ravel_multi_index(tuple(coords), tuple(sizes))
    matrix = np.zeros((int(np.prod(sizes)), num_bins), dtype=np.float64)
    matrix[group_of_bin, np.arange(num_bins)] = base

    results: list[tuple[tuple, LinearQuery]] = []
    for group, flat_key in enumerate(np.ndindex(*sizes)):
        key_values = tuple(
            d.value_of(i) for d, i in zip(key_domains, flat_key)
        )
        results.append(
            (key_values, LinearQuery(view.name, matrix[group],
                                     label=f"{agg.label()}@{key_values}"))
        )
    return results


__all__ = [
    "is_answerable",
    "transform",
    "transform_avg_parts",
    "transform_group_by",
]
