"""Query transformation: SQL -> linear query over a view (Def. 6).

A statement is *answerable* over a view ``V`` when

* it targets the view's relation;
* every predicate column is one of the view's attributes;
* the aggregate is ``COUNT(*)`` (indicator weights) or ``SUM``/``AVG`` over a
  numeric view attribute (value-weighted bins, optionally clipped per the
  paper's Appendix D).

``GROUP BY`` over view attributes is compiled to one linear query per group
bin (full-domain semantics, so absent values appear as noisy-zero bins).
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import CategoricalDomain, Domain, IntegerDomain
from repro.db.sql.ast import (
    Aggregate,
    Between,
    Comparison,
    Condition,
    InList,
    SelectStatement,
)
from repro.exceptions import UnanswerableQuery
from repro.views.histogram import HistogramView
from repro.views.linear import LinearQuery


def is_answerable(statement: SelectStatement, view: HistogramView) -> bool:
    """Full answerability check (Def. 6).

    Structural coverage (table, predicate/aggregate columns) plus, for
    scalar statements, bin alignment: a range that cuts through a
    bucketised bin cannot be answered exactly and makes the view
    inapplicable.  GROUP BY statements are checked structurally only
    (their per-group compilation happens in :func:`transform_group_by`).
    """
    try:
        _check_answerable(statement, view)
        if not statement.group_by:
            transform(statement, view)
        return True
    except UnanswerableQuery:
        return False


def _check_answerable(statement: SelectStatement, view: HistogramView) -> None:
    if statement.table != view.table:
        raise UnanswerableQuery(
            f"query targets {statement.table!r}, view is over {view.table!r}"
        )
    view_attrs = set(view.attributes)
    for column in statement.predicate.columns():
        if column not in view_attrs:
            raise UnanswerableQuery(
                f"predicate column {column!r} not covered by view {view.name!r}"
            )
    for key in statement.group_by:
        if key not in view_attrs:
            raise UnanswerableQuery(
                f"GROUP BY key {key!r} not covered by view {view.name!r}"
            )
    if len(statement.aggregates) != 1:
        raise UnanswerableQuery("view transformation supports one aggregate")
    agg = statement.aggregates[0]
    if agg.func == "COUNT":
        return
    if agg.func in ("SUM", "AVG"):
        if agg.column not in view_attrs:
            raise UnanswerableQuery(
                f"{agg.func} column {agg.column!r} not covered by view"
            )
        if not isinstance(view.schema.domain(agg.column), IntegerDomain):
            raise UnanswerableQuery(f"{agg.func} needs a numeric attribute")
        return
    raise UnanswerableQuery(f"aggregate {agg.func} not answerable over views")


def _bin_mask_for_condition(domain: Domain, cond: Condition) -> np.ndarray:
    """Inclusion vector for one condition over one attribute's bins.

    For integer domains with ``bin_size > 1`` a bin is included only when
    its *entire* value range satisfies the condition; a partial overlap
    makes the query unanswerable over this view (bin-misaligned ranges
    cannot be answered exactly from bucketised counts — Appendix D's
    discretisation caveat).
    """
    is_wide_integer = (isinstance(domain, IntegerDomain)
                       and domain.bin_size > 1)

    def evaluate(value) -> bool:
        if isinstance(cond, Comparison):
            ops = {
                "=": lambda v: v == cond.value,
                "!=": lambda v: v != cond.value,
                "<": lambda v: v < cond.value,
                "<=": lambda v: v <= cond.value,
                ">": lambda v: v > cond.value,
                ">=": lambda v: v >= cond.value,
            }
            return bool(ops[cond.op](value))
        if isinstance(cond, Between):
            return bool(cond.low <= value <= cond.high)
        if isinstance(cond, InList):
            return value in set(cond.values)
        raise UnanswerableQuery(  # pragma: no cover - parser limited
            f"unsupported condition {type(cond).__name__}"
        )

    ordered = isinstance(cond, Between) or (
        isinstance(cond, Comparison) and cond.op in ("<", "<=", ">", ">=")
    )
    if ordered and isinstance(domain, CategoricalDomain):
        raise UnanswerableQuery(
            f"ordering comparison on categorical column {cond.column!r}"
        )

    def wide_bin_inclusion(low: int, high: int) -> bool:
        """All-in -> True, all-out -> False, partial -> unanswerable."""
        if ordered:
            in_low, in_high = evaluate(low), evaluate(high)
            if in_low != in_high:
                raise UnanswerableQuery(
                    f"predicate on {cond.column!r} is not aligned with the "
                    f"view's bin boundaries (bin [{low}, {high}])"
                )
            return in_low
        # Set-membership conditions: count how many bin values satisfy.
        if isinstance(cond, (Comparison, InList)):
            if isinstance(cond, InList):
                targets = {v for v in cond.values
                           if isinstance(v, (int, float))
                           and low <= v <= high}
                satisfied = len(targets)
            elif cond.op == "=":
                satisfied = 1 if low <= cond.value <= high else 0
            else:  # "!="
                excluded = 1 if low <= cond.value <= high else 0
                satisfied = (high - low + 1) - excluded
            bin_width = high - low + 1
            if satisfied == 0:
                return False
            if satisfied == bin_width:
                return True
            raise UnanswerableQuery(
                f"predicate on {cond.column!r} selects part of a bucketised "
                f"bin [{low}, {high}]"
            )
        raise UnanswerableQuery(  # pragma: no cover
            f"unsupported condition {type(cond).__name__}"
        )

    mask = np.zeros(domain.size, dtype=bool)
    for i in range(domain.size):
        if is_wide_integer:
            low, high = domain.bin_bounds(i)
            mask[i] = wide_bin_inclusion(low, high)
        else:
            mask[i] = evaluate(domain.value_of(i))
    return mask


def _condition_bin_mask(domain: Domain, conditions: list[Condition]) -> np.ndarray:
    """Boolean inclusion vector over one attribute's bins (conjunction)."""
    mask = np.ones(domain.size, dtype=bool)
    for cond in conditions:
        mask &= _bin_mask_for_condition(domain, cond)
    return mask


def _indicator(statement: SelectStatement, view: HistogramView) -> np.ndarray:
    """Flattened 0/1 inclusion weights for the predicate over the view grid."""
    per_axis: list[np.ndarray] = []
    for attr in view.attributes:
        conditions = [c for c in statement.predicate.conditions if c.column == attr]
        per_axis.append(
            _condition_bin_mask(view.schema.domain(attr), conditions).astype(np.float64)
        )
    grid = per_axis[0]
    for axis_mask in per_axis[1:]:
        grid = np.multiply.outer(grid, axis_mask)
    return grid.reshape(-1)


def _value_weights(view: HistogramView, column: str,
                   clip: tuple[float, float] | None) -> np.ndarray:
    """Per-bin representative values of ``column``, optionally clipped."""
    domain = view.schema.domain(column)
    axis = view.axis_of(column)
    values = np.array([float(domain.value_of(i)) for i in range(domain.size)])
    if clip is not None:
        lower, upper = clip
        if upper <= lower:
            raise UnanswerableQuery(f"invalid clip bounds [{lower}, {upper}]")
        values = np.clip(values, lower, upper)
    # Broadcast along the view grid so each bin carries its column value.
    shape = [1] * len(view.shape)
    shape[axis] = domain.size
    grid = np.broadcast_to(values.reshape(shape), view.shape)
    return np.ascontiguousarray(grid).reshape(-1)


def transform(statement: SelectStatement, view: HistogramView,
              clip: tuple[float, float] | None = None) -> LinearQuery:
    """Compile a scalar statement into a :class:`LinearQuery` over ``view``.

    ``AVG`` is compiled as its SUM numerator — callers divide by a noisy
    count (post-processing); see :func:`transform_avg_parts`.
    """
    _check_answerable(statement, view)
    if statement.group_by:
        raise UnanswerableQuery(
            "use transform_group_by for GROUP BY statements"
        )
    agg = statement.aggregates[0]
    indicator = _indicator(statement, view)
    if agg.func == "COUNT":
        weights = indicator
    else:  # SUM or AVG numerator
        weights = indicator * _value_weights(view, agg.column, clip)
    if not np.any(weights):
        # An all-zero query is answerable trivially but meaningless; treat as
        # an empty-support linear query the caller may answer with 0 noise...
        # except variance calibration needs support, so reject it instead.
        raise UnanswerableQuery("predicate selects no bins of the view")
    return LinearQuery(view.name, weights, label=agg.label())


def transform_avg_parts(statement: SelectStatement, view: HistogramView,
                        clip: tuple[float, float] | None = None
                        ) -> tuple[LinearQuery, LinearQuery]:
    """(numerator SUM, denominator COUNT) pair for an AVG statement."""
    agg = statement.aggregates[0]
    if agg.func != "AVG":
        raise UnanswerableQuery("transform_avg_parts requires an AVG aggregate")
    sum_stmt = SelectStatement(
        (Aggregate("SUM", agg.column),), statement.table, statement.predicate
    )
    count_stmt = SelectStatement(
        (Aggregate("COUNT", None),), statement.table, statement.predicate
    )
    return transform(sum_stmt, view, clip), transform(count_stmt, view)


def transform_group_by(statement: SelectStatement, view: HistogramView
                       ) -> list[tuple[tuple, LinearQuery]]:
    """One linear query per group over the *full domain* of the keys.

    Returns ``[(group_key_values, LinearQuery), ...]`` covering every
    combination of the GROUP BY keys' domains — the DP-safe ``GROUP BY*``
    semantics of Appendix D.
    """
    _check_answerable(statement, view)
    if not statement.group_by:
        raise UnanswerableQuery("statement has no GROUP BY keys")
    agg = statement.aggregates[0]
    if agg.func not in ("COUNT", "SUM"):
        raise UnanswerableQuery(f"GROUP BY with {agg.func} not supported")

    base = _indicator(statement, view)
    value_grid = (_value_weights(view, agg.column, None)
                  if agg.func == "SUM" else None)

    key_domains = [view.schema.domain(k) for k in statement.group_by]
    key_axes = [view.axis_of(k) for k in statement.group_by]
    results: list[tuple[tuple, LinearQuery]] = []
    for flat_key in np.ndindex(*[d.size for d in key_domains]):
        # Select the slice of the view grid matching this key combination.
        selector = np.ones(view.shape, dtype=np.float64)
        for axis, bin_idx, domain in zip(key_axes, flat_key, key_domains):
            axis_mask = np.zeros(domain.size)
            axis_mask[bin_idx] = 1.0
            shape = [1] * len(view.shape)
            shape[axis] = domain.size
            selector = selector * axis_mask.reshape(shape)
        weights = base * selector.reshape(-1)
        if value_grid is not None:
            weights = weights * value_grid
        key_values = tuple(
            d.value_of(i) for d, i in zip(key_domains, flat_key)
        )
        results.append(
            (key_values, LinearQuery(view.name, weights,
                                     label=f"{agg.label()}@{key_values}"))
        )
    return results


__all__ = [
    "is_answerable",
    "transform",
    "transform_avg_parts",
    "transform_group_by",
]
