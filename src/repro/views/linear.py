"""Linear queries over view bins.

A transformed query ``q̂`` is a weight vector ``w`` over the flattened bins of
a view; its answer on a synopsis ``s`` is ``w · s``.  Because synopsis noise
is i.i.d. per bin with variance ``v``, the answer's noise variance is
``‖w‖² · v`` — the quantity the accuracy-to-privacy translation divides the
analyst's requirement by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LinearQuery:
    """A weighted linear query over one view's bins."""

    view_name: str
    weights: np.ndarray
    label: str = ""
    _norm_sq: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "_norm_sq", float(np.dot(weights, weights)))

    @property
    def weight_norm_sq(self) -> float:
        """``‖w‖²`` — the variance amplification factor of this query."""
        return self._norm_sq

    @property
    def support_size(self) -> int:
        """Number of bins with non-zero weight."""
        return int(np.count_nonzero(self.weights))

    def answer(self, synopsis_values: np.ndarray) -> float:
        """Evaluate the query on (noisy or exact) bin values."""
        values = np.asarray(synopsis_values, dtype=np.float64)
        if values.shape != self.weights.shape:
            raise ValueError(
                f"synopsis shape {values.shape} != weights {self.weights.shape}"
            )
        return float(np.dot(self.weights, values))

    def answer_variance(self, per_bin_variance: float) -> float:
        """Noise variance of the answer given per-bin synopsis variance."""
        return self.weight_norm_sq * per_bin_variance

    def per_bin_variance_for(self, answer_variance: float) -> float:
        """Per-bin variance budget that achieves ``answer_variance``.

        This is the paper's ``calculateVariance`` step (Algorithm 2, line 9).
        """
        if self.weight_norm_sq <= 0:
            raise ValueError("query has empty support; nothing to calibrate")
        return answer_variance / self.weight_norm_sq


def answer_many(queries: "list[LinearQuery]",
                synopsis_values: np.ndarray) -> np.ndarray:
    """Evaluate several queries against one synopsis in a single pass.

    The shared synopsis array is validated and coerced once instead of
    per query — the per-call overhead the serving layer's batched fast
    lane is eliminating.  Each row is still reduced with the same BLAS
    ``dot`` kernel :meth:`LinearQuery.answer` uses, NOT one stacked
    GEMV/matmul: a matrix product accumulates in a different order and
    drifts from the scalar path in the last ulp (measured on this host),
    and the fast lane's contract is that its answers are bit-identical
    to a fast-lane-disabled replay.
    """
    values = np.asarray(synopsis_values, dtype=np.float64)
    out = np.empty(len(queries), dtype=np.float64)
    for i, query in enumerate(queries):
        weights = query.weights
        if values.shape != weights.shape:
            raise ValueError(
                f"synopsis shape {values.shape} != weights {weights.shape}"
            )
        out[i] = np.dot(weights, values)
    return out


__all__ = ["LinearQuery", "answer_many"]
