"""View registry: catalog, selection, and cached exact materialisations.

The registry is curator-side: it holds the exact (non-noisy) view answers so
mechanisms can create synopses, and it picks which view answers each incoming
statement (smallest answerable view wins, so a single-attribute query is not
routed through a wide marginal).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.sql.ast import SelectStatement
from repro.exceptions import SchemaError, UnanswerableQuery
from repro.views.hierarchical import HierarchicalView
from repro.views.histogram import HistogramView, attribute_views
from repro.views.linear import LinearQuery
from repro.views.transform import is_answerable, transform

#: Views the registry accepts: flat histograms and dyadic trees.
AnyView = HistogramView | HierarchicalView

#: Bound on memoized routing decisions; the cache is cleared wholesale
#: past this (routing entries are tiny, but a workload of unbounded
#: distinct statements must not grow the registry without limit).
ROUTING_CACHE_LIMIT = 4096


class ViewRegistry:
    """Holds the system's views and their exact materialisations."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._views: dict[str, AnyView] = {}
        self._exact: dict[str, np.ndarray] = {}
        self._materialize_lock = threading.Lock()
        #: Wall-clock seconds spent materialising exact views ("setup time").
        self.setup_seconds = 0.0
        # Routing memoization: answerability probing + candidate
        # compilation dominate :meth:`compile`/:meth:`select` (profiling
        # shows ~5 probes per query on the serving path), yet the
        # decision is a pure function of (registered views, statement).
        # Entries are keyed by the statement *object* (every AST node is
        # a frozen, hashable dataclass, so structurally equivalent
        # statements share one entry without paying an unparse per
        # probe) plus the routing *generation* — bumped on every view
        # registration — so a new view can never resurrect a stale
        # choice.  The probe path is entirely lock-free: dict lookups
        # are atomic in CPython and the hit/miss counters are plain-int
        # increments (exact sequentially; at worst undercounted by a
        # race); only stores take the lock.
        self._route_generation = 0
        self._route_cache: dict[tuple, tuple] = {}
        self._route_lock = threading.Lock()
        self._route_hits = 0
        self._route_misses = 0

    # -- catalog ------------------------------------------------------------
    def add(self, view: AnyView) -> None:
        if view.name in self._views:
            raise SchemaError(f"view {view.name!r} already registered")
        self._views[view.name] = view
        # Any cheapest-view decision may change: version the cache away.
        self._route_generation += 1

    def add_attribute_views(self, table: str,
                            attributes: tuple[str, ...]) -> None:
        """Register one histogram view per attribute (the paper's default)."""
        schema = self._database.table(table).schema
        for view in attribute_views(schema, table, attributes):
            self.add(view)

    def add_hierarchical_view(self, table: str, attribute: str) -> str:
        """Register a dyadic-tree view over one integer attribute."""
        from repro.views.hierarchical import hierarchical_view

        schema = self._database.table(table).schema
        view = hierarchical_view(schema, table, attribute)
        self.add(view)
        return view.name

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def view(self, name: str) -> AnyView:
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f"unknown view {name!r}") from None

    def schema(self, table: str) -> Schema:
        return self._database.table(table).schema

    # -- materialisation ----------------------------------------------------
    def exact_values(self, view_name: str) -> np.ndarray:
        """Exact flattened histogram for the view (cached; curator-side).

        First-touch materialisation is serialised by a lock so concurrent
        submissions against different un-materialised views never race on
        the cache (double-checked: the hot cached path stays lock-free).
        """
        values = self._exact.get(view_name)
        if values is None:
            with self._materialize_lock:
                values = self._exact.get(view_name)
                if values is None:
                    started = time.perf_counter()
                    view = self.view(view_name)
                    values = view.materialize(self._database)
                    self._exact[view_name] = values
                    self.setup_seconds += time.perf_counter() - started
        return values

    def materialize_all(self) -> float:
        """Materialise every registered view; returns total setup seconds."""
        for name in self._views:
            self.exact_values(name)
        return self.setup_seconds

    # -- selection ----------------------------------------------------------
    @staticmethod
    def _answerable(view: AnyView, statement: SelectStatement) -> bool:
        if isinstance(view, HierarchicalView):
            return view.answerable(statement)
        return is_answerable(statement, view)

    @staticmethod
    def _compile_one(view: AnyView, statement: SelectStatement,
                     clip: tuple[float, float] | None) -> LinearQuery:
        if isinstance(view, HierarchicalView):
            return view.to_linear(statement)
        return transform(statement, view, clip)

    # -- routing memoization -------------------------------------------------
    def _route_lookup(self, key: tuple):
        """Lock-free probe of the routing cache; counts the outcome."""
        hit = self._route_cache.get(key)
        if hit is not None:
            self._route_hits += 1
        else:
            self._route_misses += 1
        return hit

    def _route_store(self, key: tuple, value: tuple) -> None:
        with self._route_lock:
            if len(self._route_cache) >= ROUTING_CACHE_LIMIT:
                self._route_cache = {}
            self._route_cache[key] = value

    def routing_counters(self) -> dict:
        """JSON-native view-routing cache statistics for snapshots."""
        hits, misses = self._route_hits, self._route_misses
        entries = len(self._route_cache)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "generation": self._route_generation,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def select(self, statement: SelectStatement) -> HistogramView:
        """Smallest *flat* view answering ``statement``.

        Used for GROUP BY / AVG compilation, which dyadic views do not
        support; scalar counting queries should go through :meth:`compile`,
        which also considers hierarchical views with a cost criterion.
        Decisions are memoized per routing generation (the choice is a
        pure function of the catalog and the statement).
        """
        key = (self._route_generation, "select", statement)
        cached = self._route_lookup(key)
        if cached is not None:
            return self._views[cached[0]]
        candidates = [v for v in self._views.values()
                      if isinstance(v, HistogramView)
                      and is_answerable(statement, v)]
        if not candidates:
            raise UnanswerableQuery(
                f"no registered view answers: {statement}"
            )
        chosen = min(candidates, key=lambda v: v.size)
        self._route_store(key, (chosen.name,))
        return chosen

    def compile(self, statement: SelectStatement,
                clip: tuple[float, float] | None = None
                ) -> tuple[AnyView, LinearQuery]:
        """Compile ``statement`` over the cheapest answerable view.

        The cost of answering a query over a view at fixed accuracy scales
        with ``sensitivity^2 * ||w||^2`` (the per-bin variance the synopsis
        must reach, times the noise a unit budget buys), so the registry
        compiles every answerable candidate and keeps the minimiser — flat
        histograms win for narrow predicates, dyadic trees for wide ranges.
        The winning (view, query) pair is memoized per routing generation:
        compiled queries are immutable, so repeat statements skip the
        full candidate sweep.  Failures are never cached (they may carry
        statement-specific diagnostics and are off the hot path).
        """
        key = (self._route_generation, "compile", statement, clip)
        cached = self._route_lookup(key)
        if cached is not None:
            return cached
        best: tuple[AnyView, LinearQuery] | None = None
        best_cost = float("inf")
        for view in self._views.values():
            if not self._answerable(view, statement):
                continue
            try:
                query = self._compile_one(view, statement, clip)
            except UnanswerableQuery:
                continue
            cost = view.sensitivity() ** 2 * query.weight_norm_sq
            if cost < best_cost:
                best, best_cost = (view, query), cost
        if best is None:
            raise UnanswerableQuery(
                f"no registered view answers: {statement}"
            )
        self._route_store(key, best)
        return best


__all__ = ["ROUTING_CACHE_LIMIT", "ViewRegistry"]
