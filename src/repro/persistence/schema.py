"""Shared accounting-snapshot schema.

``QueryService.snapshot()['provenance']`` and the checkpoint file's
``provenance`` block are the *same* structure built by the *same*
function, so the live snapshot an operator reads over the wire and the
durable record recovery trusts can never drift apart.  Keep this module
import-light (core engine only): both the service layer and the
checkpoint writer depend on it.
"""

from __future__ import annotations


def provenance_summary(engine) -> dict:
    """The canonical JSON accounting block for one engine.

    Strictly JSON-native (string keys, builtin floats): the HTTP
    ``/v1/snapshot`` endpoint serialises it verbatim and the checkpoint
    writer embeds it verbatim.
    """
    provenance = engine.provenance
    totals = provenance.row_totals()
    return {
        "epsilon_by_analyst": {
            str(name): float(totals.get(name, 0.0))
            for name in engine.analysts
        },
        "table_total": float(provenance.table_total()),
    }


__all__ = ["provenance_summary"]
