"""The append-only write-ahead budget ledger.

:class:`LedgerWriter` appends one record per durable event under a
single internal lock and makes it durable according to the configured
fsync policy:

``always``
    ``fsync`` before every append returns.  A charge is on disk before
    the response that spent it can be acknowledged — a crash can never
    re-grant acknowledged budget.  This is the default and the only
    policy whose guarantee is unconditional.

``batch``
    ``fsync`` once every ``batch_records`` appends or ``batch_seconds``
    of wall clock, whichever comes first — a deadline timer flushes a
    pending tail even when traffic stops — plus on :meth:`sync`,
    :meth:`close`, and checkpoint.  A crash can lose at most the
    unsynced window of *acknowledged* work; everything older is safe.

``off``
    Write + flush to the OS page cache, never ``fsync``.  State survives
    process death (the kernel holds the pages) but not power loss or
    kernel panic; checkpoints still fsync, so the exposure window is
    bounded by the checkpoint cadence.

:func:`read_ledger` is the crash-aware reader: it distinguishes a clean
file, a *torn tail* (the final append was cut mid-write — the expected
artifact of SIGKILL or power loss; everything before it is intact), and
*interior corruption* (a damaged record followed by valid ones — a sign
of real storage damage that recovery must refuse to paper over).

**Segment rotation** (``segment_bytes=``, ``repro serve
--ledger-segment-bytes``): once the active ``ledger.jsonl`` crosses the
threshold it is sealed — fsync'd, renamed to ``ledger.NNNNNN.jsonl``
(monotonic six-digit index), directory-fsync'd — and a fresh active file
opens.  Only the active file is ever appended to, so only the active
file can carry a torn tail; a sealed segment that does not decode
cleanly end to end is interior corruption.  :func:`read_ledger_chain`
reads segments in index order then the active file, enforcing global
sequence monotonicity across the chain, and checkpoint compaction
deletes every segment whose records are all folded in (a partially
folded segment is kept whole — over-retention is safe, recovery skips
records at or below the checkpoint's sequence).
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import DurabilityError
from repro.persistence.records import decode_line, encode_record, \
    salvage_charge

#: Supported fsync policies, strongest first.
FSYNC_POLICIES = ("always", "batch", "off")

#: ``batch`` policy defaults: fsync at least once per this many records …
DEFAULT_BATCH_RECORDS = 32
#: … or per this many seconds since the last sync, whichever is first.
DEFAULT_BATCH_SECONDS = 0.05

#: Sealed-segment naming: ``ledger.000001.jsonl`` next to the active
#: ``ledger.jsonl``.  Six digits keeps lexicographic == numeric order
#: for any plausible daemon lifetime.
_SEGMENT_RE = re.compile(r"^(?P<stem>.+)\.(?P<index>\d{6})\.jsonl$")


def segment_paths(active_path: str | Path) -> list[Path]:
    """Sealed segments belonging to ``active_path``, in index order."""
    active_path = Path(active_path)
    stem = active_path.name.rsplit(".jsonl", 1)[0]
    found = []
    for candidate in active_path.parent.glob(f"{stem}.*.jsonl"):
        match = _SEGMENT_RE.match(candidate.name)
        if match is not None and match.group("stem") == stem:
            found.append((int(match.group("index")), candidate))
    return [path for _, path in sorted(found)]


def segment_last_seq(path: str | Path) -> int:
    """Sequence number of a sealed segment's final record.

    Raises :class:`DurabilityError` when the segment's last line does
    not decode — a damaged segment must stop compaction (deleting it
    would silently discard records recovery would have flagged).
    """
    path = Path(path)
    last_line = ""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.rstrip("\n")
            if text:
                last_line = text
    if not last_line:
        raise DurabilityError(f"ledger segment {path} is empty; "
                              f"recover first")
    try:
        return decode_line(last_line)["seq"]
    except ValueError as exc:
        raise DurabilityError(
            f"ledger segment {path} ends in a damaged record ({exc}); "
            f"recover first") from None


def _fsync_dir(path: Path) -> None:
    """Persist a directory entry (rename durability); best-effort on
    filesystems that refuse directory fsync."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_replace(path: Path, text: str) -> None:
    """Durably replace ``path``'s contents: tmp + fsync + rename +
    directory fsync.  A crash at any point leaves either the old file or
    the complete new one — the single write pattern compaction, torn-
    tail repair, and the checkpoint writer all share."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class LedgerWriter:
    """Thread-safe appender over one ledger file.

    ``next_seq`` seeds the sequence counter — recovery passes one past
    the highest sequence number it saw (checkpoint or ledger), so
    sequence numbers stay globally monotonic across restarts and
    compactions.
    """

    def __init__(self, path: str | Path, fsync: str = "always",
                 next_seq: int = 1,
                 batch_records: int = DEFAULT_BATCH_RECORDS,
                 batch_seconds: float = DEFAULT_BATCH_SECONDS,
                 segment_bytes: int | None = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(f"unknown fsync policy {fsync!r}; "
                                  f"choose from {FSYNC_POLICIES}")
        if next_seq < 1:
            raise DurabilityError(f"next_seq must be >= 1, got {next_seq}")
        if segment_bytes is not None and segment_bytes < 1:
            raise DurabilityError(f"segment_bytes must be >= 1, "
                                  f"got {segment_bytes}")
        self.path = Path(path)
        self.fsync = fsync
        #: Roll the active file into a sealed numbered segment once it
        #: crosses this size (``None`` = never roll, single-file mode).
        self.segment_bytes = segment_bytes
        self.segments_sealed = 0
        self._lock = threading.Lock()
        self._next_seq = next_seq
        self._pending = 0
        self._last_sync = time.monotonic()
        self._batch_records = max(1, batch_records)
        self._batch_seconds = batch_seconds
        #: Deadline flush for the ``batch`` policy: armed when a window
        #: opens, so a pending record is fsync'd within batch_seconds
        #: even if no further append ever arrives to trigger it.
        self._deadline: threading.Timer | None = None
        self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def closed(self) -> bool:
        return self._handle is None

    @property
    def last_seq(self) -> int:
        """Highest sequence number issued so far (0 before the first)."""
        with self._lock:
            return self._next_seq - 1

    def append(self, record: dict) -> int:
        """Assign a sequence number, write one line, apply the fsync
        policy; returns the sequence number.  Raises
        :class:`DurabilityError` once closed — callers must treat an
        append failure as a failed request, never as freed budget."""
        with self._lock:
            if self._handle is None:
                raise DurabilityError(
                    f"ledger {self.path} is closed; cannot append")
            seq = self._next_seq
            self._next_seq += 1
            stamped = dict(record)
            stamped["seq"] = seq
            stamped.setdefault("ts", round(time.time(), 6))
            self._handle.write(encode_record(stamped) + "\n")
            self._handle.flush()
            if self.fsync == "always":
                os.fsync(self._handle.fileno())
            elif self.fsync == "batch":
                self._pending += 1
                now = time.monotonic()
                if (self._pending >= self._batch_records
                        or now - self._last_sync >= self._batch_seconds):
                    self._sync_locked()
                elif self._deadline is None:
                    self._deadline = threading.Timer(self._batch_seconds,
                                                     self._deadline_sync)
                    self._deadline.daemon = True
                    self._deadline.start()
            if self.segment_bytes is not None and \
                    self._handle.tell() >= self.segment_bytes:
                self._roll_locked()
            return seq

    def _roll_locked(self) -> None:
        """Seal the active file as the next numbered segment and reopen a
        fresh one (caller holds the lock).

        The segment is fsync'd *before* the rename regardless of the
        batch window (an ``off`` policy still skips it — its contract is
        page-cache-only durability), so the published name never points
        at data the kernel hasn't been asked to keep; the directory
        entry is fsync'd after, the same rename-durability pattern as
        :func:`atomic_replace`.
        """
        self._handle.flush()
        if self.fsync != "off":
            os.fsync(self._handle.fileno())
            self._pending = 0
            self._last_sync = time.monotonic()
        self._handle.close()
        existing = segment_paths(self.path)
        next_index = 1
        if existing:
            next_index = int(
                _SEGMENT_RE.match(existing[-1].name).group("index")) + 1
        stem = self.path.name.rsplit(".jsonl", 1)[0]
        sealed = self.path.with_name(f"{stem}.{next_index:06d}.jsonl")
        os.replace(self.path, sealed)
        _fsync_dir(self.path.parent)
        self.segments_sealed += 1
        self._handle = open(self.path, "a", encoding="utf-8")

    def _sync_locked(self) -> None:
        """Fsync and reset the batch window (caller holds the lock).

        An armed deadline timer is deliberately *not* cancelled — it
        no-ops on an empty window when it fires — so steady load arms at
        most one short-lived timer thread per ``batch_seconds`` instead
        of creating and cancelling one per window on the append path.
        """
        os.fsync(self._handle.fileno())
        self._pending = 0
        self._last_sync = time.monotonic()

    def _deadline_sync(self) -> None:
        with self._lock:
            self._deadline = None
            if self._handle is not None and self._pending:
                self._handle.flush()
                self._sync_locked()

    def sync(self) -> None:
        """Force pending appends to disk (any policy, including off)."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            self._sync_locked()

    def close(self) -> None:
        """Flush, fsync (unless the policy is ``off``), and close."""
        with self._lock:
            if self._deadline is not None:
                self._deadline.cancel()
                self._deadline = None
            if self._handle is None:
                return
            self._handle.flush()
            if self.fsync != "off":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def compact(self, keep_after_seq: int) -> int:
        """Atomically rewrite the ledger keeping only records with
        ``seq > keep_after_seq`` (they post-date the checkpoint that just
        folded everything else in); returns how many records survive.

        Refuses (:class:`DurabilityError`) if the ledger does not decode
        cleanly end to end: compaction must never silently discard lines
        recovery would have flagged.  Works whether the writer is open
        (the handle is re-pointed at the new file) or already closed
        (checkpoint-on-drain runs after the service shut down).
        """
        with self._lock:
            was_open = self._handle is not None
            if was_open:
                self._handle.flush()
                if self.fsync != "off":
                    os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
            surviving: list[str] = []
            if self.path.exists():
                with open(self.path, "r", encoding="utf-8") as handle:
                    for number, line in enumerate(handle, start=1):
                        text = line.rstrip("\n")
                        if not text:
                            continue
                        try:
                            record = decode_line(text)
                        except ValueError as exc:
                            raise DurabilityError(
                                f"refusing to compact {self.path}: line "
                                f"{number} is damaged ({exc}); recover "
                                f"first") from None
                        if record["seq"] > keep_after_seq:
                            surviving.append(text)
            atomic_replace(self.path,
                           "".join(text + "\n" for text in surviving))
            dropped = False
            for segment in segment_paths(self.path):
                if segment_last_seq(segment) <= keep_after_seq:
                    segment.unlink()
                    dropped = True
                # A partially folded segment is kept whole: over-retention
                # is safe (recovery skips seqs at or below the checkpoint)
                # while splitting a sealed file would forfeit its
                # only-the-active-file-tears guarantee.
            if dropped:
                _fsync_dir(self.path.parent)
            if was_open:
                self._handle = open(self.path, "a", encoding="utf-8")
            return len(surviving)


@dataclass(frozen=True)
class LedgerTail:
    """What the reader found at (or after) the last valid record.

    ``status`` is ``"ok"`` (clean end), ``"torn"`` (the trailing
    append(s) were cut mid-write and nothing valid follows), or
    ``"corrupt"`` (a damaged record is *followed* by valid ones —
    interior damage, not a crash artifact).  For a torn tail,
    ``salvage`` carries the best-effort decode of the damaged line when
    it still names a usable charge (see
    :func:`repro.persistence.records.salvage_charge`).
    """

    status: str = "ok"
    line_no: int | None = None
    reason: str | None = None
    raw: str | None = None
    salvage: dict | None = field(default=None)


def read_ledger(path: str | Path) -> tuple[list[dict], LedgerTail]:
    """Read every valid record (in order) plus the tail diagnosis.

    Sequence numbers must be strictly increasing; a regression counts as
    damage at that line.  A missing file reads as empty + clean.

    A final line without its trailing newline is *always* torn — even
    when it decodes — because the append that wrote it never completed
    (its fsync never returned, its response was never acknowledged), and
    because appending after an unterminated line would glue two records
    together into interior corruption.  When such a line still passes
    its checksum it is offered as ``salvage`` so permissive recovery can
    keep the charge (over-count, never re-grant).
    """
    path = Path(path)
    if not path.exists():
        return [], LedgerTail()
    text = path.read_bytes().decode("utf-8", errors="replace")
    terminated = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline after the last record
    records: list[dict] = []
    last_seq = 0
    for index, line in enumerate(lines):
        final = index == len(lines) - 1
        try:
            if not line:
                raise ValueError("blank line")
            if final and not terminated:
                raise ValueError("unterminated final append")
            record = decode_line(line)
            if record["seq"] <= last_seq:
                raise ValueError(
                    f"sequence regressed ({record['seq']} after {last_seq})")
        except ValueError as exc:
            remainder = lines[index + 1:]
            if any(_line_is_valid(later, last_seq) for later in remainder):
                return records, LedgerTail(
                    status="corrupt", line_no=index + 1, reason=str(exc),
                    raw=line)
            salvage = salvage_charge(line)
            if salvage is not None and \
                    isinstance(salvage.get("seq"), int) and \
                    salvage["seq"] <= last_seq:
                salvage = None  # a replayed/duplicated line, not a charge
            return records, LedgerTail(
                status="torn", line_no=index + 1, reason=str(exc), raw=line,
                salvage=salvage)
        records.append(record)
        last_seq = record["seq"]
    return records, LedgerTail()


def read_ledger_chain(active_path: str | Path) \
        -> tuple[list[dict], LedgerTail]:
    """Read sealed segments in index order, then the active file.

    Sealed segments were fsync'd and renamed whole, so any decode
    failure inside one — including a torn-looking final line — is
    interior corruption, reported with the segment named in ``reason``.
    The active file is read with the normal crash-aware
    :func:`read_ledger` rules; only it may carry a torn tail or
    salvage.  Sequence numbers must keep rising across file boundaries.
    """
    active_path = Path(active_path)
    records: list[dict] = []
    for segment in segment_paths(active_path):
        seg_records, seg_tail = read_ledger(segment)
        if seg_tail.status != "ok":
            return records, LedgerTail(
                status="corrupt", line_no=seg_tail.line_no,
                reason=f"sealed segment {segment.name}: {seg_tail.reason} "
                       f"(a sealed segment can never be torn — this is "
                       f"storage damage)",
                raw=seg_tail.raw)
        if seg_records and records and \
                seg_records[0]["seq"] <= records[-1]["seq"]:
            return records, LedgerTail(
                status="corrupt", line_no=1,
                reason=f"sealed segment {segment.name}: sequence regressed "
                       f"across segments ({seg_records[0]['seq']} after "
                       f"{records[-1]['seq']})")
        records.extend(seg_records)
    active_records, tail = read_ledger(active_path)
    last_seq = records[-1]["seq"] if records else 0
    if active_records and active_records[0]["seq"] <= last_seq:
        return records, LedgerTail(
            status="corrupt", line_no=1,
            reason=f"active ledger {active_path.name}: sequence regressed "
                   f"after sealed segments ({active_records[0]['seq']} "
                   f"after {last_seq})")
    if tail.salvage is not None and \
            isinstance(tail.salvage.get("seq"), int) and \
            tail.salvage["seq"] <= last_seq and not active_records:
        tail = LedgerTail(status=tail.status, line_no=tail.line_no,
                          reason=tail.reason, raw=tail.raw, salvage=None)
    records.extend(active_records)
    return records, tail


def _line_is_valid(line: str, after_seq: int) -> bool:
    if not line:
        return False
    try:
        return decode_line(line)["seq"] > after_seq
    except ValueError:
        return False


def repair_torn_tail(path: str | Path) -> int:
    """Rewrite a torn ledger so appends cannot land on the damaged line.

    Called by the durability manager after a *permissive* recovery
    replayed a torn tail and before the writer reopens: without this, a
    clean file on disk would end in the damaged fragment, the next
    append would concatenate onto it, and the next restart would read
    valid-records-after-damage — interior corruption, which recovery
    refuses forever.

    Keeps every valid record; a salvageable torn charge (the one
    permissive recovery applied) is re-terminated as a *valid* record —
    it keeps its own sequence number, which the reader already verified
    is fresh — so a later recovery replays the same totals.  Atomic
    (tmp + fsync + rename).  Returns the repaired file's last sequence
    number.  Raises :class:`DurabilityError` on interior corruption:
    that is never repairable, only refusable.
    """
    path = Path(path)
    records, tail = read_ledger(path)
    last_seq = records[-1]["seq"] if records else 0
    if tail.status == "corrupt":
        raise DurabilityError(
            f"ledger {path} has interior corruption at line "
            f"{tail.line_no}; refusing to repair (dropping a mid-ledger "
            f"record would under-count spent budget)")
    if tail.status == "ok":
        return last_seq
    lines = [encode_record(record) for record in records]
    if tail.salvage is not None:
        lines.append(encode_record(tail.salvage))
        last_seq = tail.salvage["seq"]
    atomic_replace(path, "".join(line + "\n" for line in lines))
    return last_seq


__all__ = [
    "DEFAULT_BATCH_RECORDS",
    "DEFAULT_BATCH_SECONDS",
    "FSYNC_POLICIES",
    "LedgerTail",
    "LedgerWriter",
    "atomic_replace",
    "read_ledger",
    "read_ledger_chain",
    "repair_torn_tail",
    "segment_last_seq",
    "segment_paths",
]
