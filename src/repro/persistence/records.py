"""Ledger record encoding: one self-checksummed JSON object per line.

The write-ahead budget ledger (:mod:`repro.persistence.ledger`) appends
exactly one line per durable event.  Two record types exist:

``charge``
    One finalised privacy charge — a committed
    :meth:`repro.core.provenance.ProvenanceTable.reserve` or a direct
    :meth:`~repro.core.provenance.ProvenanceTable.add` — carrying the
    analyst, view, epsilon, the composition mode it was checked under,
    and mechanism annotations (delta-ledger ``releases``, the zCDP
    ``rho``, the additive chain's ``global_after``).

``session``
    A service session opening or closing.  Replay ignores these for
    state (sessions never survive a restart) but reports how many were
    interrupted.

``grant``
    One delegation-grant lifecycle event: ``create`` (identity +
    epsilon cap), ``consume`` (the realised epsilon one delegated query
    charged against the cap), or ``revoke``.  Without these, a grant's
    ``consumed`` counter lives only in memory between checkpoints and
    caps under-enforce after crash recovery.

Every record carries a monotonically increasing ``seq`` and a ``crc``
(CRC-32 of the canonical JSON of the record minus the ``crc`` field), so
a reader can tell a *torn tail* — a partially flushed final append, the
normal artifact of a crash — from interior corruption.  Canonical JSON
means sorted keys and no whitespace; the checksum is therefore stable
across Python versions.
"""

from __future__ import annotations

import binascii
import json

#: Record types the ledger understands.
RECORD_TYPES = ("charge", "session", "grant")

#: Session events the ``session`` record type carries.
SESSION_EVENTS = ("open", "close")

#: Grant events the ``grant`` record type carries.
GRANT_EVENTS = ("create", "consume", "revoke")


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _crc(payload: dict) -> str:
    return format(binascii.crc32(_canonical(payload)) & 0xFFFFFFFF, "08x")


def encode_record(record: dict) -> str:
    """Serialise one record to its ledger line (no trailing newline).

    Any pre-existing ``crc`` is discarded and recomputed, so re-encoding
    a decoded record is the identity.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    body["crc"] = _crc(body)
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> dict:
    """Parse and validate one ledger line; raises ``ValueError`` on any
    defect (malformed JSON, checksum mismatch, unknown type, missing or
    mistyped fields) — the reader maps the *position* of the failure to
    torn-tail vs corruption semantics."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from None
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    crc = record.get("crc")
    body = {key: value for key, value in record.items() if key != "crc"}
    if not isinstance(crc, str) or crc != _crc(body):
        raise ValueError("checksum mismatch")
    kind = record.get("t")
    if kind not in RECORD_TYPES:
        raise ValueError(f"unknown record type {kind!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or seq < 1:
        raise ValueError(f"bad sequence number {seq!r}")
    if kind == "charge":
        _require_charge_fields(record)
    elif kind == "grant":
        _require_grant_fields(record)
    else:
        if record.get("event") not in SESSION_EVENTS:
            raise ValueError(f"bad session event {record.get('event')!r}")
        if not isinstance(record.get("analyst"), str):
            raise ValueError("session record needs an 'analyst' string")
    return record


def _require_charge_fields(record: dict) -> None:
    if not isinstance(record.get("analyst"), str):
        raise ValueError("charge record needs an 'analyst' string")
    if not isinstance(record.get("view"), str):
        raise ValueError("charge record needs a 'view' string")
    eps = record.get("eps")
    if not isinstance(eps, (int, float)) or isinstance(eps, bool) or eps < 0:
        raise ValueError(f"charge record needs a non-negative 'eps', "
                         f"got {eps!r}")


def _require_grant_fields(record: dict) -> None:
    event = record.get("event")
    if event not in GRANT_EVENTS:
        raise ValueError(f"bad grant event {event!r}")
    grant_id = record.get("grant_id")
    if not isinstance(grant_id, int) or isinstance(grant_id, bool) \
            or grant_id < 0:
        raise ValueError(f"grant record needs a non-negative integer "
                         f"'grant_id', got {grant_id!r}")
    if event == "create":
        if not isinstance(record.get("grantor"), str) or \
                not isinstance(record.get("grantee"), str):
            raise ValueError("grant create record needs 'grantor' and "
                             "'grantee' strings")
        cap = record.get("epsilon_cap")
        if cap is not None and (not isinstance(cap, (int, float))
                                or isinstance(cap, bool) or cap <= 0):
            raise ValueError(f"grant create 'epsilon_cap' must be a "
                             f"positive number or null, got {cap!r}")
    elif event == "consume":
        eps = record.get("eps")
        if not isinstance(eps, (int, float)) or isinstance(eps, bool) \
                or eps < 0:
            raise ValueError(f"grant consume record needs a non-negative "
                             f"'eps', got {eps!r}")


def salvage_charge(line: str) -> dict | None:
    """Read a torn final line for permissive recovery — iff provably
    intact.

    Only a line whose checksum still validates is trusted (the typical
    case: a complete fsync'd append that merely lost its trailing
    newline).  A line that parses as JSON but fails its crc is *not*
    salvaged: its fields may have been damaged in either direction, and
    replaying e.g. a bit-flipped smaller epsilon would under-count an
    acknowledged charge — the forbidden direction.  Dropping an
    unverifiable line is safe under the crash model: an append whose
    checksummed line never became durable never returned from fsync,
    hence its response was never acknowledged.
    """
    try:
        record = decode_line(line)
    except ValueError:
        return None
    return record if record["t"] == "charge" else None


__all__ = [
    "GRANT_EVENTS",
    "RECORD_TYPES",
    "SESSION_EVENTS",
    "decode_line",
    "encode_record",
    "salvage_charge",
]
