"""The durability manager: one data directory, one service, one ledger.

:class:`DurabilityManager` owns a data directory::

    data_dir/
      checkpoint.json       # versioned snapshot (atomic rename)
      ledger.jsonl          # write-ahead budget ledger (append-only)
      ledger.NNNNNN.jsonl   # sealed segments when segment rotation is on

and binds to exactly one :class:`repro.service.service.QueryService`
(the service calls :meth:`bind` from its constructor when built with
``durability=``).  Binding performs recovery first — checkpoint restore
plus ledger-tail replay — then attaches the provenance commit hook and
opens the ledger writer at the next sequence number, so nothing the
replay applies is ever re-journaled.

From then on every finalised charge (committed reservation or direct
add, across all three mechanisms) and every session open/close appends
one fsync-policied record *before* the triggering request can be
acknowledged.  :meth:`checkpoint` folds the ledger into a fresh
snapshot: capture the current sequence number, write the checkpoint
atomically, then compact the ledger down to records newer than the
captured sequence.  A crash between those two steps is safe — recovery
skips replayed records at or below the checkpoint's ``ledger_seq``.

A checkpoint taken while traffic is in flight never under-counts (the
sequence number is captured *before* the state is read, and a charge's
in-memory effect precedes its sequence assignment); it may over-count
in-flight charges that also remain in the ledger tail.  Checkpoint at
drain — as ``repro serve`` does — for an exact fold.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX: no advisory locking available
    fcntl = None

from repro.exceptions import DurabilityError
from repro.persistence.checkpoint import checkpoint_payload, write_checkpoint
from repro.persistence.ledger import (
    DEFAULT_BATCH_RECORDS,
    DEFAULT_BATCH_SECONDS,
    FSYNC_POLICIES,
    LedgerWriter,
    repair_torn_tail,
    segment_paths,
)
from repro.persistence.recovery import (
    CHECKPOINT_FILE,
    LEDGER_FILE,
    RECOVERY_MODES,
    RecoveryReport,
    recover_service,
)


#: Advisory lock file inside a data directory: exactly one process may
#: journal into (or compact) a data dir at a time.
LOCK_FILE = "lock"


def acquire_data_dir_lock(data_dir: str | Path):
    """Exclusive, non-blocking advisory lock on a data directory.

    Returns the open lock-file handle (``None`` where ``flock`` is
    unavailable); raises :class:`DurabilityError` when another process —
    a live daemon or an offline tool — holds it.  Read-only tools take
    it too: reading the checkpoint and the ledger while a daemon
    compacts between the two reads would report under-counted totals.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        return None
    handle = open(Path(data_dir) / LOCK_FILE, "a+")
    try:
        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise DurabilityError(
            f"data directory {data_dir} is locked by another process "
            f"(a live daemon, or an offline recover/checkpoint run); "
            f"stop it first"
        ) from None
    return handle


def release_data_dir_lock(handle) -> None:
    if handle is None:
        return
    if fcntl is not None:
        fcntl.flock(handle, fcntl.LOCK_UN)
    handle.close()


class DurabilityManager:
    """Durable accounting for one query service (see module docstring).

    Binding takes an exclusive advisory ``flock`` on ``data_dir/lock``
    (released on :meth:`close`); the offline compaction path re-acquires
    it.  Without this, ``repro checkpoint`` cron'd against a *live*
    daemon's directory would rename the ledger out from under the
    daemon's open writer handle — every later acknowledged charge would
    land in the detached inode and vanish from recovery, the under-count
    direction.  Two daemons on one directory are refused the same way.
    """

    def __init__(self, data_dir: str | Path, fsync: str = "always",
                 recover: str = "strict",
                 batch_records: int = DEFAULT_BATCH_RECORDS,
                 batch_seconds: float = DEFAULT_BATCH_SECONDS,
                 segment_bytes: int | None = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(f"unknown fsync policy {fsync!r}; "
                                  f"choose from {FSYNC_POLICIES}")
        if recover not in RECOVERY_MODES:
            raise DurabilityError(f"unknown recovery mode {recover!r}; "
                                  f"choose from {RECOVERY_MODES}")
        if segment_bytes is not None and segment_bytes < 1:
            raise DurabilityError(f"segment_bytes must be >= 1, "
                                  f"got {segment_bytes}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.recover_mode = recover
        self._batch_records = batch_records
        self._batch_seconds = batch_seconds
        self.segment_bytes = segment_bytes
        self._bind_lock = threading.Lock()
        self._checkpoint_lock = threading.Lock()
        # Weakly held: a strong reference would close a cycle
        # (service -> manager -> service) that delays GC — and with it
        # the release of the ledger fd and directory lock — after an
        # abandoned (crash-simulating) service is dropped.
        self._service_ref: weakref.ref | None = None
        self._writer: LedgerWriter | None = None
        self._dir_lock = None
        #: Report of the recovery pass :meth:`bind` ran (None before).
        self.last_recovery: RecoveryReport | None = None
        #: Sequence number captured by the newest checkpoint fold (0
        #: before any); ``ledger_lag`` = records written past it, i.e.
        #: how much tail the next boot would replay.
        self.last_checkpoint_seq = 0
        #: Wall-clock ``created_ts`` of the newest checkpoint this
        #: manager knows of — restored from disk at bind, refreshed by
        #: :meth:`checkpoint` — behind the checkpoint-age gauge.
        self.last_checkpoint_ts: float | None = None

    @property
    def _service(self):
        return self._service_ref() if self._service_ref is not None \
            else None

    def _acquire_dir_lock(self):
        return acquire_data_dir_lock(self.data_dir)

    @property
    def ledger_path(self) -> Path:
        return self.data_dir / LEDGER_FILE

    @property
    def checkpoint_path(self) -> Path:
        return self.data_dir / CHECKPOINT_FILE

    # -- lifecycle -------------------------------------------------------------
    def bind(self, service) -> RecoveryReport:
        """Recover ``service`` from the data directory, then start
        journaling its charges and session events.  Called by
        ``QueryService(durability=...)``; one manager serves one service.
        """
        with self._bind_lock:
            if self._service_ref is not None:
                raise DurabilityError(
                    "DurabilityManager is already bound to a service")
            self._dir_lock = self._acquire_dir_lock()
            try:
                report = recover_service(service, self.data_dir,
                                         mode=self.recover_mode)
                next_seq = report.next_seq
                if report.torn_tail:
                    # Permissive recovery replayed past a damaged final
                    # line; rewrite the file before appending, or the
                    # next record would concatenate onto the fragment
                    # and turn a recoverable torn tail into interior
                    # corruption.
                    repaired_last = repair_torn_tail(self.ledger_path)
                    next_seq = max(next_seq, repaired_last + 1)
                self._writer = LedgerWriter(
                    self.ledger_path, fsync=self.fsync,
                    next_seq=next_seq,
                    batch_records=self._batch_records,
                    batch_seconds=self._batch_seconds,
                    segment_bytes=self.segment_bytes)
            except BaseException:
                self._release_dir_lock()
                raise
            service.engine.provenance.on_commit = self._on_charge
            # Grant lifecycle (create/consume/revoke) journals through
            # the same write-ahead path: without it, `grant.consumed`
            # mutates only in memory and delegation caps under-enforce
            # after crash recovery.
            service.engine.delegations.on_event = self._on_grant
            self._service_ref = weakref.ref(service)
            self.last_recovery = report
            self.last_checkpoint_seq = report.checkpoint_seq
            self.last_checkpoint_ts = report.checkpoint_ts
            return report

    def _release_dir_lock(self) -> None:
        release_data_dir_lock(self._dir_lock)
        self._dir_lock = None

    def close(self) -> None:
        """Final fsync (policy permitting), close the ledger writer, and
        release the data-directory lock."""
        if self._writer is not None:
            self._writer.close()
        self._release_dir_lock()

    # -- journaling (hot path) -------------------------------------------------
    def _on_charge(self, analyst: str, view: str, epsilon: float,
                   mode: str, meta) -> None:
        record = {"t": "charge", "analyst": analyst, "view": view,
                  "eps": float(epsilon), "mode": mode}
        if meta:
            if "releases" in meta:
                record["releases"] = int(meta["releases"])
            if "rho" in meta:
                record["rho"] = float(meta["rho"])
            if "global_after" in meta:
                record["global_after"] = float(meta["global_after"])
        self._writer.append(record)

    def record_session_event(self, event: str, session_id: int,
                             analyst: str) -> None:
        """Journal a session open/close (no-op once the writer closed —
        late idempotent close_session calls after shutdown are fine)."""
        writer = self._writer
        if writer is None or writer.closed:
            return
        writer.append({"t": "session", "event": event,
                       "session_id": int(session_id), "analyst": analyst})

    def _on_grant(self, event: str, payload: dict) -> None:
        """Journal one grant lifecycle event (fired by the delegation
        manager *outside* its lock).  ``create`` records the grant's
        identity and cap, ``consume`` the realised epsilon of one
        delegated query, ``revoke`` the kill switch — together they let
        recovery rebuild ``grant.consumed`` exactly, so caps keep
        enforcing across a crash."""
        writer = self._writer
        if writer is None or writer.closed:
            return
        writer.append({"t": "grant", "event": event, **payload})

    # -- compaction --------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Fold the ledger into a fresh checkpoint; returns the payload.

        Works while serving (never under-counts; may over-count charges
        in flight) and after shutdown (the drain-time call) — the writer
        handle is reopened transparently if still live.  Concurrent
        checkpoints serialise on an internal lock: interleaving a stale
        checkpoint write with a newer one's compaction could discard
        ledger records the surviving checkpoint does not contain — an
        under-count, the forbidden direction.
        """
        service = self._service
        if service is None or self._writer is None:
            raise DurabilityError("manager is not bound to a service")
        with self._checkpoint_lock:
            # After close() the directory lock was released (the daemon
            # drained); re-take it for the fold so a concurrent process
            # cannot be journaling into the files we rewrite.
            reacquired = None
            if self._dir_lock is None:
                reacquired = self._acquire_dir_lock()
            try:
                if not self._writer.closed:
                    self._writer.sync()
                seq = self._writer.last_seq
                payload = checkpoint_payload(service.engine, seq)
                write_checkpoint(self.checkpoint_path, payload)
                self._writer.compact(keep_after_seq=seq)
                self.last_checkpoint_seq = seq
                self.last_checkpoint_ts = payload["created_ts"]
                return payload
            finally:
                if reacquired is not None:
                    release_data_dir_lock(reacquired)

    # -- reporting ---------------------------------------------------------------
    @property
    def ledger_seq(self) -> int:
        """Last sequence number the write-ahead ledger assigned."""
        return self._writer.last_seq if self._writer else 0

    @property
    def ledger_lag(self) -> int:
        """Records written past the newest checkpoint — the tail the
        next boot would replay (the ``/v1/metrics`` ledger-lag gauge)."""
        return max(0, self.ledger_seq - self.last_checkpoint_seq)

    def sealed_segments(self) -> int:
        """How many sealed ``ledger.NNNNNN.jsonl`` segments exist."""
        return len(segment_paths(self.ledger_path))

    def active_ledger_bytes(self) -> int:
        """On-disk size of the active ledger file (0 when absent)."""
        try:
            return self.ledger_path.stat().st_size
        except OSError:
            return 0

    def checkpoint_age_seconds(self) -> float:
        """Seconds since the newest checkpoint fold; ``+inf`` when the
        directory has never been checkpointed (the honest reading — the
        next boot replays the entire ledger)."""
        if self.last_checkpoint_ts is None:
            return math.inf
        return max(0.0, time.time() - float(self.last_checkpoint_ts))

    def recovered_records(self) -> int:
        """Ledger records the bind-time recovery pass read (0 before
        bind or on a fresh directory)."""
        return self.last_recovery.records_seen if self.last_recovery \
            else 0

    def describe(self) -> dict:
        """JSON-native block for ``QueryService.snapshot()``."""
        return {
            "enabled": True,
            "data_dir": str(self.data_dir),
            "fsync": self.fsync,
            "recover": self.recover_mode,
            "ledger_seq": self.ledger_seq,
            "ledger_lag": int(self.ledger_lag),
            "segment_bytes": self.segment_bytes,
            "segments": self.sealed_segments(),
            "active_bytes": self.active_ledger_bytes(),
            "recovered_charges": (self.last_recovery.charges_applied
                                  if self.last_recovery else 0),
            "recovered_records": self.recovered_records(),
        }


__all__ = ["DurabilityManager", "LOCK_FILE", "acquire_data_dir_lock",
           "release_data_dir_lock"]
