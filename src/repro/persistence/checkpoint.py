"""Checkpoints: folding the ledger into a versioned snapshot.

A checkpoint is one JSON document holding the full engine state (the
:func:`repro.core.persistence.engine_state` encoding — provenance
entries, constraints, synopses, mechanism bookkeeping, zCDP rho
ledgers), the shared :func:`repro.persistence.schema.provenance_summary`
accounting block, and ``ledger_seq`` — the highest ledger sequence
number whose effects the snapshot contains.  Recovery restores the
checkpoint and replays only ledger records *after* ``ledger_seq``, so a
crash between writing the checkpoint and compacting the ledger merely
replays records the snapshot already contains — idempotent for
provenance totals in the safe (over-counting is impossible here: the
guard skips them) direction, never under-counting.

Writes are atomic: payload to ``checkpoint.json.tmp``, fsync, rename
over ``checkpoint.json``, fsync the directory.  A crash mid-write
leaves the previous checkpoint untouched.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.persistence import FORMAT_VERSION, engine_state
from repro.exceptions import RecoveryError
from repro.persistence.ledger import atomic_replace
from repro.persistence.schema import provenance_summary

#: Version of the checkpoint envelope (the embedded engine state carries
#: its own :data:`repro.core.persistence.FORMAT_VERSION`).
CHECKPOINT_VERSION = 1


def checkpoint_payload(engine, ledger_seq: int) -> dict:
    """Build the checkpoint document for one engine at one ledger seq."""
    return {
        "version": CHECKPOINT_VERSION,
        "created_ts": round(time.time(), 6),
        "ledger_seq": int(ledger_seq),
        "engine": engine_state(engine),
        "provenance": provenance_summary(engine),
    }


def write_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically persist ``payload`` at ``path`` (tmp + fsync + rename)."""
    atomic_replace(Path(path), json.dumps(payload) + "\n")


def read_checkpoint(path: str | Path) -> dict | None:
    """Load and validate a checkpoint; ``None`` when none exists.

    Raises :class:`repro.exceptions.RecoveryError` on a damaged or
    version-incompatible file — a checkpoint is all-or-nothing, there is
    no permissive mode for it (the ledger, not the checkpoint, is the
    crash surface: checkpoints are written atomically).
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"checkpoint {path} is unreadable: {exc}") \
            from None
    if not isinstance(payload, dict):
        raise RecoveryError(f"checkpoint {path} is not a JSON object")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise RecoveryError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"this build reads {CHECKPOINT_VERSION}")
    engine = payload.get("engine")
    if not isinstance(engine, dict) or \
            engine.get("version") != FORMAT_VERSION:
        raise RecoveryError(
            f"checkpoint {path} embeds engine-state version "
            f"{None if not isinstance(engine, dict) else engine.get('version')!r}, "
            f"this build reads {FORMAT_VERSION}")
    ledger_seq = payload.get("ledger_seq")
    if not isinstance(ledger_seq, int) or ledger_seq < 0:
        raise RecoveryError(
            f"checkpoint {path} has a bad ledger_seq {ledger_seq!r}")
    return payload


__all__ = [
    "CHECKPOINT_VERSION",
    "checkpoint_payload",
    "read_checkpoint",
    "write_checkpoint",
]
