"""Crash recovery: rebuild accounting as checkpoint ⊕ ledger-tail replay.

:func:`recover_service` takes a *freshly built* :class:`repro.service
.service.QueryService` (same dataset, mechanism, and analyst roster as
the crashed process — recovery validates all three) and replays the data
directory into it:

1. restore the checkpoint, if any (full engine state, including
   synopses, the delta ledger, zCDP rho ledgers);
2. replay every ledger record with ``seq > checkpoint.ledger_seq``:
   ``charge`` records re-apply the provenance charge, the delta-ledger
   release slots, and the zCDP rho; ``session`` records are counted
   (sessions never survive a restart — clients must re-open);
3. for the additive mechanism, compare each view's ledger-recorded
   global-chain budget against the restored global synopsis and bank any
   gap in ``_global_epsilon_base`` so the per-view guarantee keeps
   counting budget whose noise values died with the process.

Replay is *constraint-free* (``ProvenanceTable.add``): the charges were
already admitted once, and re-checking could only reject — i.e. forget —
spent budget.  The direction of every compromise here is over-counting:
recovered totals are **>=** the totals at every acknowledged charge,
never below.

Torn vs corrupt tails
---------------------
A *torn tail* (final append cut mid-write, nothing valid after it) is
the expected crash artifact.  ``mode="strict"`` (the default) refuses to
serve on one — the operator confirms the situation and reruns with
``mode="permissive"``, which applies the damaged line's charge when it
is still readable (over-count) or drops it (it was never fsync'd, hence
never acknowledged under ``fsync=always``).  *Interior* corruption — a
damaged record followed by valid ones — is refused in both modes:
skipping a mid-ledger record would under-count, and under-counting is
the one unforgivable failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.additive import AdditiveGaussianMechanism
from repro.core.delegation import Grant
from repro.core.persistence import restore_engine_state
from repro.core.zcdp_vanilla import ZCdpVanillaMechanism
from repro.exceptions import RecoveryError, ReproError
from repro.persistence.checkpoint import read_checkpoint
from repro.persistence.ledger import read_ledger_chain
from repro.persistence.schema import provenance_summary

#: Recovery modes: strict refuses torn tails, permissive replays past
#: them (only ever over-counting spent budget).
RECOVERY_MODES = ("strict", "permissive")

#: File names inside a durability data directory.
CHECKPOINT_FILE = "checkpoint.json"
LEDGER_FILE = "ledger.jsonl"


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and rebuilt."""

    data_dir: str
    mode: str
    checkpoint_found: bool
    checkpoint_seq: int
    records_seen: int
    charges_applied: int
    epsilon_replayed: float
    sessions_interrupted: int
    torn_tail: bool
    salvaged_charges: int
    next_seq: int
    grants_replayed: int = 0
    provenance: dict = field(default_factory=dict)
    #: ``created_ts`` of the restored checkpoint (None without one) —
    #: seeds the daemon's checkpoint-age gauge across a restart.
    checkpoint_ts: float | None = None

    def as_dict(self) -> dict:
        return {
            "data_dir": self.data_dir, "mode": self.mode,
            "checkpoint_found": self.checkpoint_found,
            "checkpoint_seq": self.checkpoint_seq,
            "records_seen": self.records_seen,
            "charges_applied": self.charges_applied,
            "epsilon_replayed": self.epsilon_replayed,
            "sessions_interrupted": self.sessions_interrupted,
            "torn_tail": self.torn_tail,
            "salvaged_charges": self.salvaged_charges,
            "next_seq": self.next_seq,
            "grants_replayed": self.grants_replayed,
            "provenance": self.provenance,
            "checkpoint_ts": self.checkpoint_ts,
        }


def format_recovery_report(report: RecoveryReport) -> str:
    """Operator-facing recovery summary (the ``repro recover`` output)."""
    lines = [f"recovery ({report.mode}) from {report.data_dir}:"]
    checkpoint = (f"restored (seq <= {report.checkpoint_seq})"
                  if report.checkpoint_found else "none")
    lines.append(f"  checkpoint: {checkpoint}")
    lines.append(f"  ledger: {report.records_seen} record(s) seen, "
                 f"{report.charges_applied} charge(s) replayed "
                 f"(eps {report.epsilon_replayed:.6f})")
    if report.torn_tail:
        lines.append(f"  torn tail: yes — "
                     f"{report.salvaged_charges} charge(s) salvaged "
                     f"(over-counted, never re-granted)")
    if report.sessions_interrupted:
        lines.append(f"  sessions interrupted by the crash: "
                     f"{report.sessions_interrupted}")
    if report.grants_replayed:
        lines.append(f"  delegation grant events replayed: "
                     f"{report.grants_replayed}")
    eps = report.provenance.get("epsilon_by_analyst", {})
    for name in sorted(eps):
        lines.append(f"  {name}: eps {eps[name]:.6f}")
    lines.append(f"  table total: "
                 f"{report.provenance.get('table_total', 0.0):.6f}")
    return "\n".join(lines)


def read_accounting_state(data_dir: str | Path):
    """Read-only ``(checkpoint, records, tail)`` view of a data dir —
    the fold entry point for offline audit tooling.

    Performs no locking and mutates nothing: callers either hold the
    data-dir flock or run an optimistic re-check around this call (see
    :func:`repro.metrics.audit.fold_data_dir`).  The torn/corrupt-tail
    doctrine stays with the caller; this only surfaces what the reader
    found.
    """
    data_dir = Path(data_dir)
    checkpoint = read_checkpoint(data_dir / CHECKPOINT_FILE)
    records, tail = read_ledger_chain(data_dir / LEDGER_FILE)
    return checkpoint, records, tail


def recover_service(service, data_dir: str | Path,
                    mode: str = "strict") -> RecoveryReport:
    """Rebuild ``service``'s accounting from ``data_dir``; see module doc.

    The service must be freshly built (no traffic yet) over the same
    dataset/mechanism/analysts; an empty or absent data directory
    recovers to a no-op report.  Raises :class:`RecoveryError` on a
    strict-mode torn tail, on interior corruption, and on any mismatch
    between the stored state and the engine being recovered into.
    """
    if mode not in RECOVERY_MODES:
        raise RecoveryError(f"unknown recovery mode {mode!r}; "
                            f"choose from {RECOVERY_MODES}")
    data_dir = Path(data_dir)
    engine = service.engine
    if engine.provenance.table_total() != 0.0:
        raise RecoveryError("recovery needs a freshly built service "
                            "(its provenance table already has charges)")

    checkpoint = read_checkpoint(data_dir / CHECKPOINT_FILE)
    checkpoint_seq = 0
    checkpoint_ts = None
    if checkpoint is not None:
        checkpoint_ts = checkpoint.get("created_ts")
        try:
            restore_engine_state(engine, checkpoint["engine"])
        except ReproError as exc:
            raise RecoveryError(
                f"checkpoint does not match this service: {exc}") from exc
        checkpoint_seq = checkpoint["ledger_seq"]

    records, tail = read_ledger_chain(data_dir / LEDGER_FILE)
    if tail.status == "corrupt":
        raise RecoveryError(
            f"ledger {data_dir / LEDGER_FILE} line {tail.line_no} is "
            f"damaged ({tail.reason}) but valid records follow — interior "
            f"corruption, refusing to recover in any mode (skipping the "
            f"record would under-count spent budget)")
    torn = tail.status == "torn"
    if torn and mode != "permissive":
        raise RecoveryError(
            f"ledger {data_dir / LEDGER_FILE} has a torn tail at line "
            f"{tail.line_no} ({tail.reason}) — the normal artifact of a "
            f"crash mid-append; rerun with recover mode 'permissive' to "
            f"replay past it (which can only over-count spent budget), "
            f"or inspect with `repro recover`")

    charges = 0
    grants_replayed = 0
    epsilon_replayed = 0.0
    opens = closes = 0
    last_seq = checkpoint_seq
    global_after: dict[str, float] = {}
    if engine.provenance.on_commit is not None:
        # Replaying through a live hook would re-journal every restored
        # charge, doubling totals on the next recovery.
        raise RecoveryError(
            "recovery must run before durability hooks attach "
            "(the provenance table already has an on_commit hook)")
    if engine.delegations.on_event is not None:
        raise RecoveryError(
            "recovery must run before durability hooks attach "
            "(the delegation manager already has an on_event hook)")
    for record in records:
        last_seq = max(last_seq, record["seq"])
        if record["seq"] <= checkpoint_seq:
            continue  # already folded into the checkpoint
        if record["t"] == "charge":
            _apply_charge(engine, record, global_after)
            charges += 1
            epsilon_replayed += float(record["eps"])
        elif record["t"] == "grant":
            _apply_grant(engine, record)
            grants_replayed += 1
        elif record["event"] == "open":
            opens += 1
        else:
            closes += 1

    salvaged = 0
    if torn and tail.salvage is not None:
        # A salvage line passed decode_line, so its seq is a validated
        # int; the reader already discarded stale-seq salvages.
        seq = tail.salvage["seq"]
        if seq > checkpoint_seq:
            _apply_charge(engine, tail.salvage, global_after)
            charges += 1
            salvaged = 1
            epsilon_replayed += float(tail.salvage["eps"])
            last_seq = max(last_seq, seq)

    _bank_global_bases(engine, global_after)
    return RecoveryReport(
        data_dir=str(data_dir), mode=mode,
        checkpoint_found=checkpoint is not None,
        checkpoint_seq=checkpoint_seq,
        records_seen=len(records) + salvaged,
        charges_applied=charges,
        epsilon_replayed=epsilon_replayed,
        sessions_interrupted=max(0, opens - closes),
        torn_tail=torn, salvaged_charges=salvaged,
        next_seq=last_seq + 1,
        grants_replayed=grants_replayed,
        provenance=provenance_summary(engine),
        checkpoint_ts=checkpoint_ts,
    )


def _apply_charge(engine, record: dict, global_after: dict) -> None:
    """Re-apply one finalised charge, constraint-free."""
    analyst = record["analyst"]
    view = record["view"]
    epsilon = float(record["eps"])
    mechanism = engine.mechanism
    try:
        engine.provenance.add(analyst, view, epsilon)
    except ReproError as exc:
        raise RecoveryError(
            f"ledger charge seq {record.get('seq', '?')} does not fit this "
            f"service ({exc}); rebuild with the same analyst roster and "
            f"views as the crashed process") from exc
    releases = record.get("releases", 0)
    if releases:
        with mechanism._ledger_lock:
            mechanism._release_counts[analyst] = \
                mechanism._release_counts.get(analyst, 0) + int(releases)
    rho = record.get("rho")
    if rho is not None and isinstance(mechanism, ZCdpVanillaMechanism):
        rho = float(rho)
        with mechanism._rho_lock:
            mechanism._row_rho[analyst] = \
                mechanism._row_rho.get(analyst, 0.0) + rho
            mechanism._column_rho[view] = \
                mechanism._column_rho.get(view, 0.0) + rho
            mechanism._total_rho += rho
    after = record.get("global_after")
    if after is not None:
        global_after[view] = max(global_after.get(view, 0.0), float(after))


def _apply_grant(engine, record: dict) -> None:
    """Re-apply one delegation-grant lifecycle event.

    ``create`` rebuilds the grant object (the checkpoint already carries
    grants older than its fold; only the tail reaches here) and advances
    the id counter past it; ``consume`` re-applies realised spend —
    constraint-free, like charges: the spend was admitted once, and
    forgetting it would let a recovered grantee overshoot the cap, the
    under-enforcement this record type exists to prevent.  ``revoke``
    re-kills the grant.
    """
    manager = engine.delegations
    event = record["event"]
    grant_id = int(record["grant_id"])
    if event == "create":
        if grant_id not in manager._grants:
            cap = record.get("epsilon_cap")
            manager._grants[grant_id] = Grant(
                grant_id, record["grantor"], record["grantee"],
                float(cap) if cap is not None else None)
        while next(manager._counter) < grant_id:
            pass
        return
    grant = manager._grants.get(grant_id)
    if grant is None:
        raise RecoveryError(
            f"ledger grant record seq {record.get('seq', '?')} refers to "
            f"unknown grant {grant_id}; the checkpoint and ledger do not "
            f"belong to the same run")
    if event == "consume":
        grant.consumed += float(record["eps"])
        grant.queries += 1
    else:
        grant.revoked = True


def _bank_global_bases(engine, global_after: dict) -> None:
    """Additive mechanism: budget the ledger proves was realised on a
    global chain beyond what the restored store holds is banked as a
    per-view base so ``psi_V`` keeps counting it (over-count, never
    re-grant).  The stale synopsis itself is kept — it was published,
    re-serving it is free."""
    mechanism = engine.mechanism
    if not isinstance(mechanism, AdditiveGaussianMechanism):
        return
    for view, realised in global_after.items():
        current = mechanism.store.global_synopsis(view)
        held = current.epsilon if current is not None else 0.0
        gap = realised - held
        if gap > 0.0:
            mechanism._global_epsilon_base[view] = \
                mechanism._global_epsilon_base.get(view, 0.0) + gap


__all__ = [
    "CHECKPOINT_FILE",
    "LEDGER_FILE",
    "RECOVERY_MODES",
    "RecoveryReport",
    "format_recovery_report",
    "read_accounting_state",
    "recover_service",
]
