"""Durable accounting for the serving stack.

The paper's provenance table is the ground truth for how much privacy
budget each analyst has consumed; this package makes that truth survive
the process.  It provides a write-ahead budget ledger (one fsync'd JSONL
record per finalised charge and per session event), checkpoint
compaction (fold the ledger into a versioned snapshot, atomically), and
crash recovery (checkpoint ⊕ ledger-tail replay, refusing torn tails
unless explicitly permissive — and then only ever *over*-counting spent
budget).  ``QueryService(durability=DurabilityManager(...))`` wires it
in; ``repro serve --data-dir`` exposes it operationally.
"""

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_payload,
    read_checkpoint,
    write_checkpoint,
)
from repro.persistence.ledger import (
    FSYNC_POLICIES,
    LedgerTail,
    LedgerWriter,
    read_ledger,
)
from repro.persistence.manager import DurabilityManager
from repro.persistence.records import decode_line, encode_record
from repro.persistence.recovery import (
    CHECKPOINT_FILE,
    LEDGER_FILE,
    RECOVERY_MODES,
    RecoveryReport,
    format_recovery_report,
    recover_service,
)
from repro.persistence.schema import provenance_summary

__all__ = [
    "CHECKPOINT_FILE",
    "CHECKPOINT_VERSION",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "LEDGER_FILE",
    "LedgerTail",
    "LedgerWriter",
    "RECOVERY_MODES",
    "RecoveryReport",
    "checkpoint_payload",
    "decode_line",
    "encode_record",
    "format_recovery_report",
    "provenance_summary",
    "read_checkpoint",
    "read_ledger",
    "recover_service",
    "write_checkpoint",
]
