"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro fig3  --dataset adult --rows 12000
    python -m repro fig4  --dataset tpch
    python -m repro table1
    python -m repro fig6 --queries 200
    python -m repro bench-service --threads 8 --batch-size 32
    python -m repro serve --port 8321 --analysts 8 --epsilon 12
    python -m repro list

Each subcommand maps to one experiment regenerator (see DESIGN.md §3);
options control the reduced scale.  Output is the same text tables the
benchmarks print.  ``bench-service`` drives the concurrent serving layer
(:mod:`repro.service`) with a mixed or disjoint-view multi-analyst
workload and compares one-query-at-a-time submission against batched
planning; ``--compare-global`` additionally pits the sharded service
against the global-lock baseline, ``--remote`` measures the same
workload over the HTTP wire (q/s + p50/p95 latency), and ``--json``
writes the machine-readable ``BENCH_service_throughput.json`` artifact.

``serve`` runs the network daemon (:mod:`repro.server`): it builds a
dataset + analyst roster, wraps them in a sharded ``QueryService``, and
serves the protocol-v1 HTTP API until SIGTERM/SIGINT, then drains
in-flight work before exiting.  Connect with
:class:`repro.client.RemoteAnalyst`.  With ``--data-dir`` the service
journals every finalised charge to a write-ahead budget ledger
(``--fsync`` policy), recovers checkpoint ⊕ ledger on boot
(``--recover strict|permissive``), and checkpoints on drain;
``--tokens`` loads the auth table from a (non-world-readable) JSON
file.  ``recover`` and ``checkpoint`` are the matching offline tools
for a stopped daemon's data directory; ``audit`` replays the same
ledger chain into per-analyst spend timelines (and ``--verify``
cross-checks a live daemon's ``/v1/metrics`` under exact equality),
while ``monitor`` watches a running daemon and can alert on projected
budget exhaustion (``--exhaustion-horizon``).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Callable

from repro.exceptions import ReproError

from repro.experiments.additive_vs_vanilla import (
    format_component,
    run_analyst_sweep,
    run_epsilon_sweep,
)
from repro.experiments.bfs_budget import format_bfs_budget, run_bfs_budget
from repro.experiments.cached_synopses import (
    format_cached_synopses,
    run_cached_synopses,
)
from repro.experiments.constraint_expansion import (
    format_constraint_expansion,
    run_constraint_expansion,
)
from repro.experiments.delta_sweep import format_delta_sweep, run_delta_sweep
from repro.experiments.end_to_end import format_end_to_end, run_end_to_end
from repro.experiments.runtime_table import (
    format_runtime_table,
    run_runtime_table,
)
from repro.experiments.collusion import format_collusion, run_collusion
from repro.experiments.translation_validation import (
    format_translation_validation,
    run_translation_validation,
)


def _fig3(args) -> str:
    cells = run_end_to_end(dataset=args.dataset,
                           queries_per_analyst=args.queries,
                           repeats=args.repeats, num_rows=args.rows,
                           seed=args.seed)
    return format_end_to_end(cells, dataset=args.dataset)


def _fig4(args) -> str:
    series = run_bfs_budget(dataset=args.dataset, num_rows=args.rows,
                            max_steps=args.queries * 10, seed=args.seed)
    return format_bfs_budget(series)


def _fig5(args) -> str:
    cells = run_cached_synopses(dataset=args.dataset, repeats=args.repeats,
                                num_rows=args.rows, seed=args.seed)
    return format_cached_synopses(cells)


def _fig6(args) -> str:
    sweep = run_analyst_sweep(dataset=args.dataset,
                              queries_per_analyst=args.queries,
                              repeats=args.repeats, num_rows=args.rows,
                              seed=args.seed)
    eps = run_epsilon_sweep(dataset=args.dataset,
                            queries_per_analyst=args.queries,
                            repeats=args.repeats, num_rows=args.rows,
                            seed=args.seed)
    return (format_component(sweep, by="num_analysts") + "\n\n"
            + format_component(eps, by="epsilon"))


def _fig7(args) -> str:
    cells = run_constraint_expansion(dataset=args.dataset,
                                     queries_per_analyst=args.queries,
                                     repeats=args.repeats,
                                     num_rows=args.rows, seed=args.seed)
    return format_constraint_expansion(cells)


def _fig8(args) -> str:
    cells = run_delta_sweep(dataset=args.dataset, num_rows=args.rows,
                            max_steps=args.queries * 10, seed=args.seed)
    return format_delta_sweep(cells)


def _fig9(args) -> str:
    reports = run_translation_validation(dataset=args.dataset,
                                         num_rows=args.rows,
                                         max_steps=args.queries * 10,
                                         seed=args.seed)
    return format_translation_validation(reports)


def _table(dataset: str) -> Callable:
    def runner(args) -> str:
        rows = run_runtime_table(dataset=dataset,
                                 queries_per_analyst=args.queries,
                                 repeats=args.repeats, num_rows=args.rows,
                                 seed=args.seed)
        return format_runtime_table(rows, dataset)
    return runner


def _rq1(args) -> str:
    cells = run_collusion(dataset=args.dataset,
                          queries_per_analyst=args.queries,
                          num_rows=args.rows, seed=args.seed)
    return format_collusion(cells)


def _bench_service(args) -> str:
    from repro.experiments.service_throughput import (
        check_remote_matches_inproc,
        format_remote_comparison,
        format_service_throughput,
        format_sharding_comparison,
        run_remote_comparison,
        run_service_throughput,
        run_sharding_comparison,
    )

    results = run_service_throughput(
        dataset=args.dataset, num_rows=args.rows,
        num_analysts=args.analysts, queries_per_analyst=args.queries,
        threads=args.threads, batch_size=args.batch_size,
        epsilon=args.epsilon, repeats=args.repeats, seed=args.seed,
        execution=args.execution, shards=args.shards,
        workload=args.workload, fast_lane=not args.no_fast_lane,
        backend=args.backend, workers=args.workers,
    )
    report = format_service_throughput(results)
    mp_comparison = None
    if args.compare_threaded:
        from repro.experiments.service_throughput import (
            check_mp_matches_threaded,
            format_mp_comparison,
            run_mp_comparison,
        )

        mp_comparison = run_mp_comparison(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 60),
            batch_size=args.batch_size, epsilon=args.epsilon,
            seed=args.seed, shards=args.shards, workers=args.workers,
            workload=args.workload,
        )
        check_mp_matches_threaded(*mp_comparison)
        report += "\n\n" + format_mp_comparison(*mp_comparison)
    profile = None
    if args.profile:
        from repro.experiments.service_throughput import (
            format_profile,
            run_profile,
        )

        profile = run_profile(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 100),
            batch_size=args.batch_size, epsilon=args.epsilon,
            workload=args.workload, seed=args.seed, shards=args.shards,
            execution=args.execution, fast_lane=not args.no_fast_lane,
        )
        report += "\n\n" + format_profile(profile)
    durability = None
    if args.durability:
        from repro.experiments.service_throughput import (
            check_durability_matches_baseline,
            format_durability_comparison,
            run_durability_comparison,
        )

        durability = run_durability_comparison(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 60),
            threads=args.threads, batch_size=args.batch_size,
            epsilon=args.epsilon, repeats=args.repeats, seed=args.seed,
            execution=args.execution, shards=args.shards,
        )
        check_durability_matches_baseline(durability)
        report += "\n\n" + format_durability_comparison(durability)
    comparison = None
    if args.compare_global:
        comparison = run_sharding_comparison(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 60),
            threads=args.threads, repeats=args.repeats, seed=args.seed,
            shards=args.shards,
        )
        report += "\n\n" + format_sharding_comparison(comparison)
    remote = None
    if args.remote:
        remote = run_remote_comparison(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 60),
            connections=args.connections or args.threads,
            batch_size=args.batch_size, seed=args.seed,
            execution=args.execution, shards=args.shards,
            open_loop_rate=args.rate,
        )
        check_remote_matches_inproc(remote)
        report += "\n\n" + format_remote_comparison(remote)
    trace_overhead = None
    if args.trace_overhead:
        from repro.experiments.service_throughput import (
            check_trace_overhead,
            format_trace_overhead,
            run_trace_overhead,
        )

        # The axis resolves a ~1% effect: never shrink the replay below
        # the calibrated length (short runs drown in container noise).
        trace_overhead = run_trace_overhead(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=max(args.queries, 240),
            batch_size=args.batch_size, epsilon=args.epsilon,
            seed=args.seed, shards=args.shards, workload=args.workload,
        )
        check_trace_overhead(trace_overhead)
        report += "\n\n" + format_trace_overhead(trace_overhead)
    audit_overhead = None
    if args.audit_overhead:
        from repro.experiments.service_throughput import (
            check_audit_overhead,
            format_audit_overhead,
            run_audit_overhead,
        )

        # Same calibration rule as --trace-overhead: the axis resolves
        # a ~1% effect, so never shrink the replay below the floor.
        audit_overhead = run_audit_overhead(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=max(args.queries, 240),
            batch_size=args.batch_size, epsilon=args.epsilon,
            seed=args.seed, shards=args.shards, workload=args.workload,
        )
        check_audit_overhead(audit_overhead)
        report += "\n\n" + format_audit_overhead(audit_overhead)
    overload = None
    if args.overload:
        from repro.experiments.service_throughput import (
            check_overload,
            format_overload,
            run_overload_experiment,
        )

        overload = run_overload_experiment(
            dataset=args.dataset, num_rows=args.rows,
            num_analysts=args.analysts,
            queries_per_analyst=min(args.queries, 60),
            connections=args.connections or args.threads,
            seed=args.seed, execution=args.execution, shards=args.shards,
        )
        check_overload(*overload)
        report += "\n\n" + format_overload(*overload)
    if args.json is not None:
        from repro.experiments.service_throughput import write_json_artifact

        from repro.experiments.service_throughput import fastpath_comparable

        # The pre-overhaul q/s baseline was measured at one specific
        # configuration; the comparison block is only meaningful there
        # (shared predicate with the bench script).
        fast_path_comparable = fastpath_comparable(
            dataset=args.dataset, rows=args.rows, analysts=args.analysts,
            queries=args.queries, threads=args.threads, shards=args.shards,
            batch_size=args.batch_size, epsilon=args.epsilon,
            seed=args.seed, workload=args.workload,
            execution=args.execution, fast_lane=not args.no_fast_lane,
            backend=args.backend)
        write_json_artifact(args.json, results, comparison, remote,
                            durability, profile=profile,
                            fast_path=fast_path_comparable,
                            overload=overload, mp=mp_comparison,
                            trace_overhead=trace_overhead,
                            audit_overhead=audit_overhead)
        report += f"\nwrote {args.json}"
    return report


def _build_daemon_service(args, durable: bool = True):
    """The service a daemon-side command runs over (shared by ``serve``,
    ``recover``, and ``checkpoint`` so recovery always rebuilds against
    the same roster/dataset the crashed daemon served).

    ``durable=False`` builds the bare service with no durability manager
    even when ``--data-dir`` is set — the read-only ``recover`` command
    must never bind a ledger writer (binding repairs a torn tail and
    would mutate the very file the operator is inspecting).
    """
    from repro.experiments.service_throughput import make_service_analysts
    from repro.service.service import QueryService

    from repro.datasets import load_adult, load_tpch

    loader = load_adult if args.dataset == "adult" else load_tpch
    kwargs = {} if args.rows is None else (
        {"num_rows": args.rows} if args.dataset == "adult"
        else {"lineitem_rows": args.rows})
    bundle = loader(seed=args.seed, **kwargs)
    analysts = make_service_analysts(args.analysts)
    durability = None
    if durable and getattr(args, "data_dir", None):
        from repro.persistence import DurabilityManager

        durability = DurabilityManager(args.data_dir,
                                       fsync=getattr(args, "fsync",
                                                     "always"),
                                       recover=getattr(args, "recover",
                                                       "strict"),
                                       segment_bytes=getattr(
                                           args, "ledger_segment_bytes",
                                           None))
    backend = getattr(args, "backend", "threaded")
    # The mp backend's determinism contract needs per-view noise
    # streams (its constructor enforces this); the offline tools
    # (recover/checkpoint) have no --backend and rebuild threaded.
    extra = {"noise_streams": "per_view"} if backend == "mp" else {}
    return QueryService.build(bundle, analysts, args.epsilon,
                              execution=args.execution,
                              shards=args.shards, seed=args.seed,
                              backend=backend,
                              workers=getattr(args, "workers", None),
                              durability=durability, **extra)


def _serve(args) -> str:
    from repro.persistence.recovery import format_recovery_report
    from repro.server.daemon import ReproServer, load_token_table

    tokens = load_token_table(args.tokens) if args.tokens else None
    service = _build_daemon_service(args)
    try:
        server = ReproServer(service, host=args.host, port=args.port,
                             tokens=tokens,
                             checkpoint_every=args.checkpoint_every,
                             rate_limit=args.rate_limit,
                             rate_burst=args.rate_burst,
                             micro_batch=args.micro_batch,
                             request_timeout=args.request_timeout,
                             max_body_bytes=args.max_body,
                             tls_cert=args.tls_cert,
                             tls_key=args.tls_key,
                             log_json=args.log_json)
    except ReproError:
        service.close()
        raise

    print(f"repro serve: listening on {server.url}", flush=True)
    print(f"  dataset={args.dataset} rows={args.rows or 'full'} "
          f"epsilon={args.epsilon} execution={args.execution} "
          f"shards={args.shards} backend={args.backend}", flush=True)
    if args.backend == "mp":
        print(f"  mp workers: {args.workers or 'auto'} (forked after "
              f"recovery; charging stays in this process)", flush=True)
    if server.tls:
        print(f"  tls: cert={args.tls_cert} (TLS >= 1.2)", flush=True)
    if args.rate_limit is not None:
        print(f"  admission control: {args.rate_limit:g} q/s per analyst "
              f"(burst {args.rate_burst if args.rate_burst is not None else max(1.0, args.rate_limit):g}); "
              f"over-limit requests get 429 + Retry-After", flush=True)
    if args.micro_batch:
        print("  adaptive micro-batching: queued single queries coalesce "
              "into planner batches under pressure", flush=True)
    print(f"  metrics: GET {server.url}/v1/metrics (Prometheus text)",
          flush=True)
    print(f"  audit: GET {server.url}/v1/audit (spend timeline, burn "
          f"rates, exhaustion forecasts)", flush=True)
    if args.log_json:
        print("  access log: one JSON line per request on stderr",
              flush=True)
    if service.durability is not None:
        print(f"  durability: data_dir={args.data_dir} fsync={args.fsync} "
              f"recover={args.recover}", flush=True)
        if args.checkpoint_every is not None:
            print(f"  background checkpoint: every "
                  f"{args.checkpoint_every:g}s (ledger folded while "
                  f"serving; bounds replay on the next boot)", flush=True)
        report = service.durability.last_recovery
        if report.checkpoint_found or report.records_seen:
            print("  " + format_recovery_report(report)
                  .replace("\n", "\n  "), flush=True)
    if args.tokens:
        # Tokens from a file are credentials — never echo them.
        print(f"  auth tokens: {len(server.tokens)} loaded from "
              f"{args.tokens} (values not shown)", flush=True)
    else:
        print("  auth tokens (token -> analyst):", flush=True)
        for token, analyst in server.tokens.items():
            print(f"    {token} -> {analyst}", flush=True)
    print("  SIGTERM/SIGINT drains in-flight work and exits.", flush=True)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    stop.wait()
    print("repro serve: draining...", flush=True)
    # A DrainTimeout (in-flight work abandoned) propagates as a ReproError
    # so supervisors see exit code 2, not a clean stop.
    server.shutdown()
    if service.durability is not None:
        if server.checkpoint_abandoned:
            # A background fold is still blocked on I/O and holds the
            # checkpoint lock — another fold would hang here forever.
            # Nothing is lost: the ledger has every charge and the next
            # boot replays it.
            print("repro serve: skipping drain-time checkpoint (a "
                  "background fold is still blocked on I/O); the next "
                  "boot replays the ledger", flush=True)
        else:
            # The drain finished, so this fold is exact: the ledger
            # collapses into the checkpoint and the next boot replays
            # nothing.
            service.checkpoint()
            print(f"repro serve: checkpoint written to {args.data_dir}",
                  flush=True)
    return "stopped cleanly (drained)"


def _monitor(args) -> str:
    """Heartbeat watcher over a running daemon's ``/v1/metrics``."""
    from repro.metrics.monitor import run_monitor

    fired = run_monitor(
        args.url, interval=args.interval,
        samples=1 if args.once else args.samples,
        timeout=args.timeout, max_ledger_lag=args.max_ledger_lag,
        max_ledger_lag_growth=args.max_ledger_lag_growth,
        max_rate_limited_rate=args.max_429_rate,
        exhaustion_horizon=args.exhaustion_horizon,
        webhook_path=args.webhook_file)
    if fired:
        raise ReproError(f"{fired} alert(s) fired")
    return "healthy (no alerts)"


def _recover(args) -> str:
    """Offline recovery inspection: rebuild state, report, change nothing.

    Run it while the daemon is down.  Strictly read-only: the recovery
    runs directly (no durability manager is bound), so no ledger writer
    opens, no files are created, and a torn tail is *not* repaired —
    the evidence stays on disk exactly as the crash left it.
    """
    from repro.persistence.manager import (
        acquire_data_dir_lock,
        release_data_dir_lock,
    )
    from repro.persistence.recovery import (
        format_recovery_report,
        recover_service,
    )

    _require_data_dir(args)
    # Hold the directory lock for the read: a live daemon compacting
    # between the checkpoint read and the ledger read would make this
    # audit report under-counted totals.
    lock = acquire_data_dir_lock(args.data_dir)
    service = _build_daemon_service(args, durable=False)
    try:
        report = recover_service(service, args.data_dir,
                                 mode=args.recover)
        return format_recovery_report(report)
    finally:
        service.close()
        release_data_dir_lock(lock)


def _require_data_dir(args) -> None:
    """Offline tools inspect an *existing* data directory — a mistyped
    path must fail loudly, not be silently created and reported as an
    empty (budget-free) ledger."""
    import os

    if not os.path.isdir(args.data_dir):
        raise ReproError(f"data directory {args.data_dir} does not exist "
                         f"(it is created by `repro serve --data-dir`)")
    args.fsync = "off"
    args.recover = "permissive" if args.permissive else "strict"


def _checkpoint(args) -> str:
    """Offline compaction: recover, fold the ledger into a checkpoint.

    Run it while the daemon is down (e.g. after a crash, or from cron
    between restarts) to bound replay time on the next boot.
    """
    from repro.persistence.recovery import format_recovery_report

    _require_data_dir(args)
    service = _build_daemon_service(args)
    try:
        report = service.durability.last_recovery
        service.checkpoint()
        return (format_recovery_report(report)
                + f"\ncheckpoint written to {args.data_dir}; "
                  f"ledger compacted")
    finally:
        service.close()


def _audit(args) -> str:
    """Offline budget audit: fold a data dir's checkpoint + ledger chain
    into per-(analyst, view) spend timelines.

    Unlike ``recover``/``checkpoint`` this never rebuilds the dataset or
    service — the ledger chain alone carries the accounting, so the fold
    is cheap enough for cron.  Strictly read-only: no ledger writer
    opens, a torn tail is not repaired.  With ``--verify`` the replayed
    totals are cross-checked against a live daemon's ``/v1/metrics``
    exposition under **exact** float equality (both sides execute the
    identical op sequence; any mismatch is an accounting bug, not
    rounding).
    """
    import json as json_module
    import os

    from repro.metrics.audit import (
        fold_data_dir,
        format_audit_report,
        verify_report,
    )

    if not os.path.isdir(args.data_dir):
        raise ReproError(f"data directory {args.data_dir} does not exist "
                         f"(it is created by `repro serve --data-dir`)")
    mode = "permissive" if args.permissive else "strict"
    report = fold_data_dir(args.data_dir, mode=mode)
    problems: list[str] = []
    verified = False
    if args.verify:
        from repro.metrics.monitor import scrape

        # The daemon keeps serving while we fold, so a charge can land
        # between the fold and the scrape and make the totals diverge
        # legitimately.  Re-fold against the moved ledger and re-scrape
        # until a quiescent pair agrees (first try on an idle daemon).
        for attempt in range(5):
            families = scrape(args.verify, timeout=args.timeout)
            problems = verify_report(report, families)
            if not problems:
                verified = True
                break
            report = fold_data_dir(args.data_dir, mode=mode)
    if args.json:
        payload = report.as_dict()
        if args.verify:
            payload["verify"] = {"url": args.verify,
                                 "verified": verified,
                                 "problems": problems}
        out = json_module.dumps(payload, indent=2, sort_keys=True)
    else:
        out = format_audit_report(report, analyst=args.analyst,
                                  limit=args.limit)
        if verified:
            out += (f"\n  verify: totals match {args.verify} "
                    f"/v1/metrics exactly")
    if problems:
        raise ReproError(
            "audit verification failed — replayed totals diverge from "
            "the live daemon:\n  " + "\n  ".join(problems))
    return out


COMMANDS: dict[str, tuple[Callable, str]] = {
    "rq1": (_rq1, "worst-case collusion bounds vs #analysts (RQ1)"),
    "fig3": (_fig3, "end-to-end RRQ comparison (Fig. 3 / Fig. 10)"),
    "fig4": (_fig4, "BFS cumulative budget (Fig. 4)"),
    "fig5": (_fig5, "cached synopses vs workload size (Fig. 5)"),
    "fig6": (_fig6, "additive GM vs vanilla (Fig. 6 / Fig. 11)"),
    "fig7": (_fig7, "constraint expansion tau (Fig. 7)"),
    "fig8": (_fig8, "delta sweep (Fig. 8)"),
    "fig9": (_fig9, "translation validation (Fig. 9)"),
    "table1": (_table("tpch"), "runtime comparison on TPC-H (Table 1)"),
    "table3": (_table("adult"), "runtime comparison on Adult (Table 3)"),
    "bench-service": (_bench_service,
                      "service throughput: batched planning vs single"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the DProvDB paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    for name, (_, help_text) in COMMANDS.items():
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--dataset", choices=("adult", "tpch"),
                         default="adult")
        cmd.add_argument("--rows", type=int, default=12000,
                         help="dataset rows (0 = paper scale)")
        cmd.add_argument("--queries", type=int, default=150,
                         help="queries per analyst")
        cmd.add_argument("--repeats", type=int, default=2)
        cmd.add_argument("--seed", type=int, default=0)
        if name == "bench-service":
            cmd.add_argument("--threads", type=int, default=8,
                             help="concurrent worker threads")
            cmd.add_argument("--batch-size", type=int, default=32,
                             help="queries per submit_batch call")
            cmd.add_argument("--analysts", type=int, default=8,
                             help="number of analysts in the workload")
            cmd.add_argument("--epsilon", type=float, default=12.0,
                             help="table-level privacy budget")
            cmd.add_argument("--shards", type=int, default=8,
                             help="shard count for the sharded service")
            cmd.add_argument("--execution", choices=("sharded", "global"),
                             default="sharded",
                             help="service execution mode")
            cmd.add_argument("--workload", choices=("mixed", "disjoint"),
                             default="mixed",
                             help="paper-style mix or per-analyst "
                                  "disjoint wide views")
            cmd.add_argument("--backend", choices=("threaded", "mp"),
                             default="threaded",
                             help="execution backend: shard threads "
                                  "(threaded) or forked worker processes "
                                  "with shared-memory synopses (mp)")
            cmd.add_argument("--workers", type=int, default=None,
                             help="mp worker process count "
                                  "(default: min(4, cpu_count))")
            cmd.add_argument("--compare-threaded", action="store_true",
                             help="replay the identical workload through "
                                  "both backends and assert bit-identical "
                                  "accounting (answers, per-analyst "
                                  "epsilon, fresh releases) plus the mp "
                                  "q/s floor")
            cmd.add_argument("--compare-global", action="store_true",
                             help="also run the disjoint-view sharded vs "
                                  "global-lock comparison")
            cmd.add_argument("--remote", action="store_true",
                             help="also measure the same workload over the "
                                  "HTTP wire (in-process server, ephemeral "
                                  "port): q/s + p50/p95 latency")
            cmd.add_argument("--connections", type=int, default=None,
                             help="client connections for --remote "
                                  "(default: --threads)")
            cmd.add_argument("--rate", type=float, default=None,
                             help="with --remote: add an open-loop run "
                                  "with Poisson arrivals at RATE q/s")
            cmd.add_argument("--durability", action="store_true",
                             help="also measure the write-ahead ledger's "
                                  "fsync-policy q/s tax (none vs "
                                  "off/batch/always) and assert identical "
                                  "accounting")
            cmd.add_argument("--overload", action="store_true",
                             help="also run the overload scenario: "
                                  "open-loop arrivals far above the "
                                  "per-analyst rate limit, asserting "
                                  "bounded p95, cheap 429s, and exact "
                                  "accounting replay vs in-process")
            cmd.add_argument("--trace-overhead", action="store_true",
                             help="also replay the workload with tracing "
                                  "on vs off, asserting bit-identical "
                                  "answers and q/s no worse than the "
                                  "0.95x floor")
            cmd.add_argument("--audit-overhead", action="store_true",
                             help="also replay the workload with the "
                                  "budget-audit tailer on vs off, "
                                  "asserting bit-identical answers, "
                                  "fresh-path q/s no worse than the "
                                  "0.95x floor, and zero audit events "
                                  "on the memoized fast lane")
            cmd.add_argument("--profile", action="store_true",
                             help="cProfile one inline replay and print "
                                  "the top-20 cumulative hotspot table "
                                  "(also embedded in the --json artifact)")
            cmd.add_argument("--no-fast-lane", action="store_true",
                             help="disable the memoized-answer fast lane "
                                  "(measures the slow path; accounting is "
                                  "identical either way)")
            cmd.add_argument("--json", nargs="?", metavar="PATH",
                             const="BENCH_service_throughput.json",
                             default=None,
                             help="write the machine-readable artifact")

    def add_daemon_args(cmd, data_dir_required: bool) -> None:
        """Dataset/roster options shared by serve/recover/checkpoint —
        recovery must rebuild against the same service shape."""
        cmd.add_argument("--dataset", choices=("adult", "tpch"),
                         default="adult")
        cmd.add_argument("--rows", type=int, default=12000,
                         help="dataset rows (0 = paper scale)")
        cmd.add_argument("--analysts", type=int, default=8,
                         help="number of registered analysts")
        cmd.add_argument("--epsilon", type=float, default=12.0,
                         help="table-level privacy budget")
        cmd.add_argument("--shards", type=int, default=8,
                         help="shard count for the sharded service")
        cmd.add_argument("--execution", choices=("sharded", "global"),
                         default="sharded", help="service execution mode")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--data-dir", required=data_dir_required,
                         default=None, metavar="PATH",
                         help="durability directory (write-ahead budget "
                              "ledger + checkpoint)")

    serve = sub.add_parser(
        "serve", help="run the HTTP daemon over a sharded QueryService")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = ephemeral, printed at start)")
    add_daemon_args(serve, data_dir_required=False)
    serve.add_argument("--fsync", choices=("always", "batch", "off"),
                       default="always",
                       help="ledger fsync policy with --data-dir "
                            "(default: always — a charge is on disk "
                            "before its answer is acknowledged)")
    serve.add_argument("--recover", choices=("strict", "permissive"),
                       default="strict",
                       help="boot-time recovery mode: strict refuses a "
                            "torn ledger tail; permissive replays past "
                            "it, only ever over-counting spent budget")
    serve.add_argument("--checkpoint-every", type=float, default=None,
                       metavar="SECONDS",
                       help="with --data-dir: fold the write-ahead ledger "
                            "into the checkpoint every SECONDS while "
                            "serving (default: only at drain), so a "
                            "long-lived daemon's next boot replays a "
                            "bounded ledger tail")
    serve.add_argument("--tokens", default=None, metavar="PATH",
                       help="JSON token file mapping auth token -> "
                            "analyst (must not be world-readable); "
                            "replaces the identity default")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="QPS",
                       help="per-analyst admission control: sustained "
                            "queries/sec each analyst may submit; over "
                            "the limit the server answers 429 with a "
                            "Retry-After hint (default: unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       metavar="N",
                       help="token-bucket burst with --rate-limit "
                            "(default: max(1, rate))")
    serve.add_argument("--micro-batch", action="store_true",
                       help="coalesce queued single queries into planner "
                            "batches when the server is under queueing "
                            "pressure (accounting is identical; see "
                            "--overload in bench-service)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-connection socket timeout: a client "
                            "that stalls mid-body gets 408 and cannot "
                            "hold a handler thread (default: 30)")
    serve.add_argument("--max-body", type=int, default=8 * 1024 * 1024,
                       metavar="BYTES",
                       help="largest request body accepted before the "
                            "server answers 413 (default: 8 MiB)")
    serve.add_argument("--backend", choices=("threaded", "mp"),
                       default="threaded",
                       help="execution backend; mp forks worker "
                            "processes after durability recovery "
                            "(shared-memory synopses, charging stays "
                            "in the daemon process)")
    serve.add_argument("--workers", type=int, default=None,
                       help="mp worker process count "
                            "(default: min(4, cpu_count))")
    serve.add_argument("--tls-cert", default=None, metavar="PEM",
                       help="TLS certificate chain; with --tls-key, "
                            "serves https (TLS >= 1.2)")
    serve.add_argument("--tls-key", default=None, metavar="PEM",
                       help="TLS private key (pair of --tls-cert)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit one structured JSON access-log line "
                            "per request to stderr (route, status, "
                            "latency, analyst, trace id); the default "
                            "human format is unchanged without it")
    serve.add_argument("--ledger-segment-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="with --data-dir: seal the active ledger "
                            "into numbered segments at this size so "
                            "checkpoint compaction never rewrites "
                            "unbounded history (default: single file)")

    recover = sub.add_parser(
        "recover", help="inspect crash recovery for a --data-dir "
                        "(rebuild + report, change nothing)")
    add_daemon_args(recover, data_dir_required=True)
    recover.add_argument("--permissive", action="store_true",
                         help="replay past a torn ledger tail "
                              "(over-counts at most the unacknowledged "
                              "tail; never re-grants)")

    checkpoint = sub.add_parser(
        "checkpoint", help="offline compaction: fold a --data-dir's "
                           "ledger into a fresh checkpoint")
    add_daemon_args(checkpoint, data_dir_required=True)
    checkpoint.add_argument("--permissive", action="store_true",
                            help="recover past a torn ledger tail before "
                                 "folding")

    audit = sub.add_parser(
        "audit", help="offline budget audit: replay a --data-dir's "
                      "checkpoint + ledger chain into per-analyst/view "
                      "spend timelines; --verify cross-checks a live "
                      "daemon's /v1/metrics under exact equality")
    audit.add_argument("--data-dir", required=True, metavar="PATH",
                       help="durability directory to audit (write-ahead "
                            "budget ledger + checkpoint)")
    audit.add_argument("--permissive", action="store_true",
                       help="audit past a torn ledger tail (matching "
                            "permissive recovery: over-counts at most "
                            "the unacknowledged tail)")
    audit.add_argument("--analyst", default=None, metavar="NAME",
                       help="restrict the report to one analyst")
    audit.add_argument("--limit", type=int, default=20, metavar="N",
                       help="newest timeline events to print "
                            "(default: 20)")
    audit.add_argument("--json", action="store_true",
                       help="emit the full machine-readable report "
                            "(cells, row totals, ordered events) "
                            "instead of the human table")
    audit.add_argument("--verify", default=None, metavar="URL",
                       help="scrape URL's /v1/metrics and require the "
                            "replayed totals to match exactly (nonzero "
                            "exit on any divergence); works against a "
                            "live daemon via the lockless fold")
    audit.add_argument("--timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="per-scrape HTTP timeout for --verify "
                            "(default: 5)")

    monitor = sub.add_parser(
        "monitor", help="heartbeat watcher: scrape a daemon's "
                        "/v1/metrics on an interval and alert on stale "
                        "scrapes, ledger-lag growth, mp worker crashes, "
                        "and 429 spikes (nonzero exit on any alert)")
    monitor.add_argument("--url", default="http://127.0.0.1:8321",
                         help="daemon base url (default: "
                              "http://127.0.0.1:8321)")
    monitor.add_argument("--interval", type=float, default=10.0,
                         metavar="SECONDS",
                         help="seconds between scrapes (default: 10)")
    monitor.add_argument("--once", action="store_true",
                         help="one scrape, absolute checks only, exit "
                              "(a cron/CI probe)")
    monitor.add_argument("--samples", type=int, default=None, metavar="N",
                         help="stop after N scrapes (default: forever)")
    monitor.add_argument("--timeout", type=float, default=5.0,
                         metavar="SECONDS",
                         help="per-scrape HTTP timeout (default: 5)")
    monitor.add_argument("--max-ledger-lag", type=float, default=10_000,
                         metavar="RECORDS",
                         help="alert when unfolded ledger records exceed "
                              "this bound (default: 10000)")
    monitor.add_argument("--max-ledger-lag-growth", type=float,
                         default=1_000, metavar="RECORDS",
                         help="alert when ledger lag grows by more than "
                              "this many records in one interval "
                              "(default: 1000)")
    monitor.add_argument("--max-429-rate", type=float, default=5.0,
                         metavar="QPS",
                         help="alert when admission-control refusals "
                              "exceed this rate between scrapes "
                              "(default: 5/s)")
    monitor.add_argument("--exhaustion-horizon", type=float, default=0.0,
                         metavar="SECONDS",
                         help="alert when any analyst's projected "
                              "seconds-to-budget-exhaustion (the audit "
                              "trail's repro_exhaustion_seconds gauge) "
                              "falls below this horizon (default: 0 = "
                              "disabled)")
    monitor.add_argument("--webhook-file", default=None, metavar="PATH",
                         help="append each alert as a JSON line to this "
                              "file (a forwarder can tail it into a "
                              "pager)")
    return parser


_DAEMON_COMMANDS = {
    "serve": _serve,
    "recover": _recover,
    "checkpoint": _checkpoint,
    "monitor": _monitor,
    "audit": _audit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_, help_text) in COMMANDS.items():
            print(f"{name:8s} {help_text}")
        print("serve    HTTP daemon over a sharded QueryService "
              "(repro.server; --data-dir adds the write-ahead ledger)")
        print("recover  inspect crash recovery for a durability data-dir")
        print("checkpoint  fold a durability data-dir's ledger into a "
              "checkpoint")
        print("monitor  heartbeat watcher over a running daemon's "
              "/v1/metrics (alerts + nonzero exit)")
        print("audit    offline budget audit of a durability data-dir "
              "(spend timelines; --verify cross-checks a live daemon)")
        return 0
    if getattr(args, "rows", None) == 0:
        args.rows = None
    runner, _ = COMMANDS[args.command] if args.command in COMMANDS \
        else (_DAEMON_COMMANDS[args.command], "")
    try:
        print(runner(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
