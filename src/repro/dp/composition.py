"""Composition theorems for (epsilon, delta)-DP.

The provenance table composes privacy losses with *basic* sequential
composition by default — the paper explicitly recommends this for constraint
checking because the per-(analyst, view) count of releases is small.  Advanced
composition (Dwork-Rothblum-Vadhan) and the optimal homogeneous composition of
Kairouz-Oh-Viswanath (the paper's Theorem A.1) are provided for accounting
over long query sequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class PrivacyLoss:
    """An ``(epsilon, delta)`` pair with component-wise addition."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")
        if not 0 <= self.delta <= 1:
            raise ValueError(f"delta must be in [0, 1], got {self.delta}")

    def __add__(self, other: "PrivacyLoss") -> "PrivacyLoss":
        return PrivacyLoss(self.epsilon + other.epsilon,
                           min(1.0, self.delta + other.delta))

    def __radd__(self, other):
        # Supports sum(...) with the default start value 0.
        if other == 0:
            return self
        return NotImplemented


ZERO_LOSS = PrivacyLoss(0.0, 0.0)


def basic_composition(losses: Iterable[PrivacyLoss]) -> PrivacyLoss:
    """Sequential composition (Theorem 2.1): epsilons and deltas add."""
    total_eps = 0.0
    total_delta = 0.0
    for loss in losses:
        total_eps += loss.epsilon
        total_delta += loss.delta
    return PrivacyLoss(total_eps, min(1.0, total_delta))


def advanced_composition(epsilon: float, delta: float, k: int,
                         delta_slack: float) -> PrivacyLoss:
    """Dwork-Rothblum-Vadhan advanced composition for ``k`` identical losses.

    The k-fold composition of ``(eps, delta)``-DP mechanisms satisfies
    ``(eps', k*delta + delta_slack)``-DP with

        eps' = sqrt(2k ln(1/delta_slack)) * eps + k * eps * (e^eps - 1).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return ZERO_LOSS
    if not 0 < delta_slack < 1:
        raise ValueError(f"delta_slack must be in (0, 1), got {delta_slack}")
    eps_prime = (math.sqrt(2.0 * k * math.log(1.0 / delta_slack)) * epsilon
                 + k * epsilon * (math.expm1(epsilon)))
    return PrivacyLoss(eps_prime, min(1.0, k * delta + delta_slack))


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def kairouz_composition(epsilon: float, delta: float, k: int) -> list[PrivacyLoss]:
    """Optimal homogeneous composition (paper's Theorem A.1).

    Returns the family of valid guarantees ``((k - 2i) eps,
    1 - (1 - delta)^k (1 - delta_i))`` for ``i = 0..floor(k/2)``; callers pick
    the member matching their delta tolerance.  Computed in log space to stay
    stable for moderate ``k``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    results: list[PrivacyLoss] = []
    log_denom = k * math.log1p(math.exp(epsilon)) if epsilon < 700 else k * epsilon
    for i in range(k // 2 + 1):
        acc = 0.0
        for ell in range(i):
            log_c = _log_comb(k, ell)
            a = (k - ell) * epsilon
            b = (k - 2 * i + ell) * epsilon
            # exp(a) - exp(b) with a > b, in a numerically safe form.
            diff = math.exp(min(a, 700.0)) - math.exp(min(b, 700.0))
            acc += math.exp(min(log_c, 700.0)) * diff
        delta_i = acc / math.exp(min(log_denom, 700.0)) if acc else 0.0
        total_delta = 1.0 - (1.0 - delta) ** k * (1.0 - min(delta_i, 1.0))
        results.append(PrivacyLoss(max(0.0, (k - 2 * i) * epsilon),
                                   min(1.0, total_delta)))
    return results


def best_epsilon_for_delta(candidates: Sequence[PrivacyLoss],
                           delta_budget: float) -> PrivacyLoss:
    """Pick the smallest-epsilon guarantee whose delta fits the budget."""
    feasible = [c for c in candidates if c.delta <= delta_budget]
    if not feasible:
        raise ValueError(f"no candidate satisfies delta <= {delta_budget}")
    return min(feasible, key=lambda c: c.epsilon)


__all__ = [
    "PrivacyLoss",
    "ZERO_LOSS",
    "advanced_composition",
    "basic_composition",
    "best_epsilon_for_delta",
    "kairouz_composition",
]
