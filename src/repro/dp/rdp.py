"""Renyi differential privacy accounting (Mironov 2017).

The paper lists RDP composition (Theorem A.2) and the RDP -> (eps, delta)
conversion (Theorem A.3) as the tighter accounting options DProvDB supports
alongside basic composition.  This accountant tracks the RDP curve of a
sequence of Gaussian releases on a fixed grid of orders and converts to
approximate DP on demand.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Sequence

import numpy as np

#: Default grid of Renyi orders; mirrors the common practice of mixing small
#: fractional orders (tight for large delta) with large integer orders.
DEFAULT_ORDERS: tuple[float, ...] = tuple(
    [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0,
     20.0, 24.0, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0]
)


def gaussian_rdp(alpha: float, sigma: float, sensitivity: float = 1.0) -> float:
    """RDP of one Gaussian release: ``eps(alpha) = alpha Δ² / (2 σ²)``."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return alpha * sensitivity ** 2 / (2.0 * sigma ** 2)


def rdp_to_approx_dp(orders: Sequence[float], rdp: Sequence[float],
                     delta: float) -> float:
    """Convert an RDP curve to the best ``eps`` at the given ``delta``.

    Uses the paper's Theorem A.3 conversion ``eps = rdp + log(1/delta)/(a-1)``
    minimised over the order grid.
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    best = math.inf
    for alpha, eps in zip(orders, rdp):
        if alpha <= 1.0:
            continue
        candidate = eps + math.log(1.0 / delta) / (alpha - 1.0)
        best = min(best, candidate)
    return best


class RdpAccountant:
    """Accumulates the RDP curve of a sequence of Gaussian releases.

    Composition in RDP is exact addition per order (Theorem A.2), so the
    accountant is just a running vector sum.
    """

    def __init__(self, orders: Iterable[float] = DEFAULT_ORDERS) -> None:
        self.orders = tuple(float(a) for a in orders)
        if any(a <= 1.0 for a in self.orders):
            raise ValueError("all Renyi orders must exceed 1")
        # Locked: releases arrive concurrently from the sharded service's
        # parallel per-view sections; a torn vector += would under-count.
        self._lock = threading.Lock()
        self._rdp = np.zeros(len(self.orders))
        self._releases = 0

    @property
    def releases(self) -> int:
        """Number of Gaussian releases composed so far."""
        return self._releases

    def record_gaussian(self, sigma: float, sensitivity: float = 1.0) -> None:
        """Compose one Gaussian release with noise ``sigma`` into the curve."""
        curve = np.array(
            [gaussian_rdp(a, sigma, sensitivity) for a in self.orders]
        )
        with self._lock:
            self._rdp += curve
            self._releases += 1

    def epsilon(self, delta: float) -> float:
        """Best ``eps`` at ``delta`` for everything recorded so far."""
        if self._releases == 0:
            return 0.0
        return rdp_to_approx_dp(self.orders, self._rdp.tolist(), delta)


__all__ = ["DEFAULT_ORDERS", "RdpAccountant", "gaussian_rdp", "rdp_to_approx_dp"]
