"""Laplace mechanism (pure epsilon-DP).

Not used by the DProvDB mechanisms themselves (which are Gaussian throughout,
as the additive approach relies on the stability of Gaussians under
convolution), but part of the DP toolbox so baselines and examples can show a
pure-DP alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.rng import SeedLike, ensure_generator


def laplace_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Scale ``b = Δ₁/ε`` of the Laplace mechanism."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity / epsilon


@dataclass(frozen=True)
class LaplaceMechanism:
    """Additive Laplace noise on a numeric vector (``epsilon``-DP)."""

    epsilon: float
    sensitivity: float = 1.0

    @property
    def scale(self) -> float:
        return laplace_scale(self.epsilon, self.sensitivity)

    @property
    def variance(self) -> float:
        """Per-coordinate noise variance ``2b²``."""
        return 2.0 * self.scale ** 2

    def release(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        gen = ensure_generator(rng)
        arr = np.asarray(values, dtype=np.float64)
        return arr + gen.laplace(0.0, self.scale, size=arr.shape)


__all__ = ["LaplaceMechanism", "laplace_scale"]
