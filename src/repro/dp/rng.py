"""Randomness helpers.

Every stochastic component in the library takes either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiment scripts reproducible: a single integer seed threaded through the
harness fully determines every noise draw.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (so callers can share
    a stream); anything else is fed to ``numpy.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each analyst / mechanism its own stream so that adding a
    mechanism to an experiment does not perturb the draws of the others.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def stable_seed(*parts: Union[int, str]) -> int:
    """Map a tuple of labels to a deterministic 63-bit seed.

    Experiments use this to derive per-(mechanism, repeat, epsilon) seeds that
    are stable across runs and insensitive to execution order.
    """
    import hashlib

    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


__all__ = ["SeedLike", "ensure_generator", "spawn", "stable_seed"]
