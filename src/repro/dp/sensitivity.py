"""Sensitivity conventions.

All DProvDB views are counting histograms, so the only sensitivities the
system needs are:

* the L2 sensitivity of a full-domain histogram — 1 under the add/remove-one
  (unbounded) neighbouring relation, sqrt(2) under replace-one (bounded),
  because replacing a tuple moves one unit out of one bin and into another;
* the sensitivity of a *linear query over an already-noised histogram*, which
  is zero (post-processing) — queries never touch the raw data directly.

Aggregates like SUM are answered as weighted linear queries over histogram
bins (Appendix D of the paper), so clipping bounds enter through the query
weights, not through the view sensitivity.
"""

from __future__ import annotations

import enum
import math


class Neighboring(enum.Enum):
    """Neighbouring-database convention."""

    #: Databases differ by adding or removing one tuple.
    UNBOUNDED = "unbounded"
    #: Databases differ by replacing the value of one tuple.
    BOUNDED = "bounded"


def histogram_l2_sensitivity(neighboring: Neighboring = Neighboring.UNBOUNDED) -> float:
    """L2 sensitivity of a full-domain counting histogram."""
    if neighboring is Neighboring.UNBOUNDED:
        return 1.0
    return math.sqrt(2.0)


def clipped_value_bound(lower: float, upper: float, bin_size: float = 1.0) -> float:
    """Per-tuple magnitude bound for SUM answered over a clipped histogram.

    With values clipped to ``[lower, upper]`` and bins of width ``bin_size``,
    the worst-case contribution of one tuple to a weighted bin-count query is
    ``(upper - lower) / bin_size`` (paper, Appendix D footnote 3).
    """
    if upper <= lower:
        raise ValueError(f"need upper > lower, got [{lower}, {upper}]")
    if bin_size <= 0:
        raise ValueError(f"bin_size must be positive, got {bin_size}")
    return (upper - lower) / bin_size


__all__ = ["Neighboring", "clipped_value_bound", "histogram_l2_sensitivity"]
