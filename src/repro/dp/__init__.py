"""Differential-privacy primitives.

This subpackage is the noise/accounting substrate for the DProvDB
reproduction: the analytic Gaussian mechanism of Balle & Wang (2018) with both
calibration directions (``(eps, delta) -> sigma`` and ``sigma -> minimal
eps``), the classical Gaussian and Laplace mechanisms, and privacy accountants
(basic sequential composition, advanced/Kairouz composition, Renyi DP, zCDP).
"""

from repro.dp.gaussian import (
    GaussianMechanism,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
    gaussian_delta,
    minimal_epsilon,
)
from repro.dp.geometric import GeometricMechanism, geometric_variance
from repro.dp.laplace import LaplaceMechanism, laplace_scale
from repro.dp.composition import (
    PrivacyLoss,
    advanced_composition,
    basic_composition,
    kairouz_composition,
)
from repro.dp.rdp import RdpAccountant
from repro.dp.zcdp import ZCdpAccountant, rho_from_sigma, zcdp_to_approx_dp
from repro.dp.rng import ensure_generator
from repro.dp.sensitivity import Neighboring, histogram_l2_sensitivity

__all__ = [
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "Neighboring",
    "PrivacyLoss",
    "RdpAccountant",
    "ZCdpAccountant",
    "advanced_composition",
    "analytic_gaussian_sigma",
    "basic_composition",
    "classical_gaussian_sigma",
    "ensure_generator",
    "gaussian_delta",
    "geometric_variance",
    "histogram_l2_sensitivity",
    "kairouz_composition",
    "laplace_scale",
    "minimal_epsilon",
    "rho_from_sigma",
    "zcdp_to_approx_dp",
]
