"""Zero-concentrated differential privacy (Bun & Steinke 2016) accounting.

zCDP is the other tight accountant the paper mentions for composing Gaussian
releases: a Gaussian with noise ``sigma`` on a query of L2 sensitivity ``Δ``
is ``rho``-zCDP with ``rho = Δ²/(2σ²)``, composition adds the ``rho``'s, and
``rho``-zCDP implies ``(rho + 2 sqrt(rho ln(1/delta)), delta)``-DP.
"""

from __future__ import annotations

import math
import threading


def rho_from_sigma(sigma: float, sensitivity: float = 1.0) -> float:
    """zCDP parameter of one Gaussian release."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return sensitivity ** 2 / (2.0 * sigma ** 2)


def zcdp_to_approx_dp(rho: float, delta: float) -> float:
    """Standard conversion ``rho``-zCDP -> ``(eps, delta)``-DP."""
    if rho < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


def rho_for_epsilon(epsilon: float, delta: float) -> float:
    """Largest ``rho`` whose conversion stays within ``(eps, delta)``.

    Solves ``rho + 2 sqrt(rho L) = eps`` with ``L = ln(1/delta)`` — a
    quadratic in ``sqrt(rho)`` with the positive root
    ``sqrt(rho) = sqrt(L + eps) - sqrt(L)``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    log_term = math.log(1.0 / delta)
    root = math.sqrt(log_term + epsilon) - math.sqrt(log_term)
    return root ** 2


class ZCdpAccountant:
    """Running-sum accountant over ``rho`` values of Gaussian releases.

    Records are locked: the sharded service releases noise from parallel
    per-view sections, and a torn ``+=`` would silently under-report the
    realised loss.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rho = 0.0
        self._releases = 0

    @property
    def rho(self) -> float:
        return self._rho

    @property
    def releases(self) -> int:
        return self._releases

    def record_gaussian(self, sigma: float, sensitivity: float = 1.0) -> None:
        rho = rho_from_sigma(sigma, sensitivity)
        with self._lock:
            self._rho += rho
            self._releases += 1

    def record_rho(self, rho: float) -> None:
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        with self._lock:
            self._rho += rho
            self._releases += 1

    def epsilon(self, delta: float) -> float:
        if self._releases == 0:
            return 0.0
        return zcdp_to_approx_dp(self._rho, delta)


__all__ = ["ZCdpAccountant", "rho_for_epsilon", "rho_from_sigma", "zcdp_to_approx_dp"]
