"""Gaussian mechanisms and the analytic calibration of Balle & Wang (2018).

Three entry points matter to the rest of the system:

* :func:`analytic_gaussian_sigma` — the paper's ``analyticGM(eps, delta, Δ)``:
  the *smallest* standard deviation that makes ``q(D) + N(0, σ²I)``
  ``(eps, delta)``-DP (Definition 3 of the paper).
* :func:`minimal_epsilon` — the inverse direction used by the
  accuracy-to-privacy translation (Definition 9): given a noise standard
  deviation, the smallest ``eps`` for which the mechanism is
  ``(eps, delta)``-DP, found by binary search over the monotone condition.
* :class:`GaussianMechanism` — a small convenience wrapper that samples the
  noise.

The calibration implements Algorithm 1 of Balle & Wang exactly (the
``B⁺``/``B⁻`` characterisation with a doubling bracket followed by bisection),
computed in log space via ``scipy.special.log_ndtr`` so that large ``eps``
does not overflow ``exp(eps) * Phi(b)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import log_ndtr, ndtr

from repro.dp.rng import SeedLike, ensure_generator

#: Default multiplicative precision for binary searches in this module.
DEFAULT_TOLERANCE = 1e-12


def gaussian_delta(epsilon: float, sigma: float, sensitivity: float = 1.0) -> float:
    """Exact ``delta`` achieved by the Gaussian mechanism (Def. 3 condition).

    Returns the left-hand side of the analytic Gaussian condition

        Phi(Δ/(2σ) − εσ/Δ) − e^ε · Phi(−Δ/(2σ) − εσ/Δ)

    which equals the smallest ``delta`` such that ``N(0, σ²)`` noise on a
    query of L2 sensitivity ``Δ`` is ``(ε, δ)``-DP.
    """
    if sigma <= 0:
        return 1.0
    if sensitivity <= 0:
        return 0.0
    a = sensitivity / (2.0 * sigma) - epsilon * sigma / sensitivity
    b = -sensitivity / (2.0 * sigma) - epsilon * sigma / sensitivity
    # ndtr(a) - exp(eps + log Phi(b)), guarded in log space for large eps.
    second = math.exp(min(epsilon + float(log_ndtr(b)), 700.0))
    delta = float(ndtr(a)) - second
    return max(delta, 0.0)


def _b_plus(v: float, epsilon: float) -> float:
    """Balle-Wang ``B⁺_ε(v)`` (monotone increasing in ``v``)."""
    term = math.exp(min(epsilon + float(log_ndtr(-math.sqrt(epsilon * (v + 2.0)))), 700.0))
    return float(ndtr(math.sqrt(epsilon * v))) - term


def _b_minus(v: float, epsilon: float) -> float:
    """Balle-Wang ``B⁻_ε(v)`` (monotone decreasing in ``v``)."""
    term = math.exp(min(epsilon + float(log_ndtr(-math.sqrt(epsilon * (v + 2.0)))), 700.0))
    return float(ndtr(-math.sqrt(epsilon * v))) - term


def _bracket_and_bisect(func, target: float, increasing: bool,
                        tolerance: float = DEFAULT_TOLERANCE) -> float:
    """Find the boundary ``v`` where ``func(v)`` crosses ``target``.

    For an increasing ``func`` this returns ``sup{v >= 0 : func(v) <= target}``;
    for a decreasing one, ``inf{v >= 0 : func(v) <= target}``.
    """
    predicate = (lambda v: func(v) > target) if increasing else (lambda v: func(v) <= target)
    # Doubling phase: find the smallest power-of-two v where predicate flips.
    lo, hi = 0.0, 1.0
    while not predicate(hi):
        lo = hi
        hi *= 2.0
        if hi > 2.0**80:  # pragma: no cover - safety net
            return hi
    # Bisection phase.
    while hi - lo > tolerance * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if predicate(mid):
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def analytic_gaussian_sigma(epsilon: float, delta: float,
                            sensitivity: float = 1.0,
                            tolerance: float = DEFAULT_TOLERANCE) -> float:
    """Smallest ``sigma`` making the Gaussian mechanism ``(eps, delta)``-DP.

    Implements Algorithm 1 of Balle & Wang (2018).  Raises ``ValueError`` on
    non-positive ``epsilon``/``delta`` or ``delta >= 1``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")

    delta_zero = _b_plus(0.0, epsilon)
    if math.isclose(delta, delta_zero, rel_tol=1e-15):
        alpha = 1.0
    elif delta > delta_zero:
        v_star = _bracket_and_bisect(lambda v: _b_plus(v, epsilon), delta,
                                     increasing=True, tolerance=tolerance)
        alpha = math.sqrt(1.0 + v_star / 2.0) - math.sqrt(v_star / 2.0)
    else:
        v_star = _bracket_and_bisect(lambda v: _b_minus(v, epsilon), delta,
                                     increasing=False, tolerance=tolerance)
        alpha = math.sqrt(1.0 + v_star / 2.0) + math.sqrt(v_star / 2.0)
    return alpha * sensitivity / math.sqrt(2.0 * epsilon)


def classical_gaussian_sigma(epsilon: float, delta: float,
                             sensitivity: float = 1.0) -> float:
    """Classical (Dwork-Roth Appendix A) Gaussian calibration.

    ``sigma = Δ · sqrt(2 ln(1.25/δ)) / ε``.  Only valid for ``eps < 1`` in the
    original analysis; provided as the "basic Gaussian mechanism" baseline the
    paper mentions alongside the analytic one.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def minimal_epsilon(sigma: float, delta: float, sensitivity: float = 1.0,
                    upper: float = 100.0, precision: float = 1e-9) -> float:
    """Smallest ``eps <= upper`` with ``gaussian_delta(eps, sigma) <= delta``.

    This is the search of the paper's Definition 9 (analytic Gaussian
    translation): the condition is monotone decreasing in ``eps``, so a
    bisection terminates with an ``eps`` within ``precision`` of the true
    minimum (Proposition 5.1's ``p``).

    Raises ``ValueError`` if even ``eps = upper`` cannot achieve ``delta``
    (i.e. the requested noise is too small for any budget under the cap).
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if gaussian_delta(upper, sigma, sensitivity) > delta:
        raise ValueError(
            f"noise sigma={sigma} cannot satisfy delta={delta} even at eps={upper}"
        )
    lo, hi = 0.0, upper
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if gaussian_delta(mid, sigma, sensitivity) <= delta:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class GaussianMechanism:
    """Additive Gaussian noise on a numeric vector.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget of a single invocation.
    sensitivity:
        L2 sensitivity of the query being perturbed.
    analytic:
        Use the Balle-Wang calibration (default) or the classical one.
    """

    epsilon: float
    delta: float
    sensitivity: float = 1.0
    analytic: bool = True

    @property
    def sigma(self) -> float:
        """Noise standard deviation implied by the budget."""
        if self.analytic:
            return analytic_gaussian_sigma(self.epsilon, self.delta, self.sensitivity)
        return classical_gaussian_sigma(self.epsilon, self.delta, self.sensitivity)

    @property
    def variance(self) -> float:
        """Per-coordinate noise variance (the paper's ``v = σ²``)."""
        return self.sigma ** 2

    def release(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Return ``values + N(0, σ²I)`` as ``float64``."""
        gen = ensure_generator(rng)
        arr = np.asarray(values, dtype=np.float64)
        return arr + gen.normal(0.0, self.sigma, size=arr.shape)


__all__ = [
    "DEFAULT_TOLERANCE",
    "GaussianMechanism",
    "analytic_gaussian_sigma",
    "classical_gaussian_sigma",
    "gaussian_delta",
    "minimal_epsilon",
]
