"""Two-sided geometric mechanism (discrete Laplace), pure epsilon-DP.

The paper's future-work list mentions supporting other noise distributions.
For integer-valued counting queries the two-sided geometric mechanism is the
canonical discrete choice: noise ``k`` has probability proportional to
``exp(-|k| * eps / Δ)``, giving exact ``eps``-DP with integer outputs (no
floating-point side channels).  Sampled as the difference of two geometric
variables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.rng import SeedLike, ensure_generator


def geometric_parameter(epsilon: float, sensitivity: float = 1.0) -> float:
    """``alpha = exp(-eps / Δ)`` — the mechanism's decay parameter."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    return math.exp(-epsilon / sensitivity)


def geometric_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Variance of two-sided geometric noise: ``2a / (1 - a)^2``."""
    alpha = geometric_parameter(epsilon, sensitivity)
    return 2.0 * alpha / (1.0 - alpha) ** 2


@dataclass(frozen=True)
class GeometricMechanism:
    """Additive two-sided geometric noise on an integer vector."""

    epsilon: float
    sensitivity: float = 1.0

    @property
    def alpha(self) -> float:
        return geometric_parameter(self.epsilon, self.sensitivity)

    @property
    def variance(self) -> float:
        return geometric_variance(self.epsilon, self.sensitivity)

    def sample_noise(self, size, rng: SeedLike = None) -> np.ndarray:
        """Two-sided geometric noise as the difference of two geometrics.

        If ``G1, G2`` are i.i.d. geometric (number of failures) with success
        probability ``1 - alpha``, then ``G1 - G2`` has the two-sided
        geometric law with parameter ``alpha``.
        """
        gen = ensure_generator(rng)
        p = 1.0 - self.alpha
        # numpy's geometric counts trials (support 1..inf); failures = k - 1.
        g1 = gen.geometric(p, size=size) - 1
        g2 = gen.geometric(p, size=size) - 1
        return (g1 - g2).astype(np.int64)

    def release(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        arr = np.asarray(values)
        if not np.issubdtype(arr.dtype, np.integer):
            rounded = np.rint(arr)
            if not np.allclose(arr, rounded):
                raise ValueError("geometric mechanism needs integer values")
            arr = rounded.astype(np.int64)
        return arr + self.sample_noise(arr.shape, rng)


__all__ = ["GeometricMechanism", "geometric_parameter", "geometric_variance"]
