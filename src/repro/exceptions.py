"""Exception hierarchy for the DProvDB reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around calls
into the system.  The distinction that matters operationally is between
*rejections* (a query was refused because answering it would violate a privacy
constraint — the system is still healthy) and *errors* (misuse of the API or
an internal invariant violation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class QueryRejected(ReproError):
    """A query was refused because it would violate a privacy constraint.

    Attributes
    ----------
    reason:
        Human-readable explanation (which constraint failed).
    constraint:
        Short machine tag: ``"row"``, ``"column"``, ``"table"`` or
        ``"translation"``.
    """

    def __init__(self, reason: str, constraint: str = "table") -> None:
        super().__init__(reason)
        self.reason = reason
        self.constraint = constraint


class BudgetExceeded(ReproError):
    """An operation asked for more privacy budget than remains available."""


class TranslationError(ReproError):
    """Accuracy-to-privacy translation could not find a feasible budget."""


class UnanswerableQuery(ReproError):
    """No registered view can answer the submitted query (Def. 6)."""


class SchemaError(ReproError):
    """Invalid schema construction or a reference to an unknown attribute."""


class SQLError(ReproError):
    """SQL text could not be tokenised, parsed, or executed."""


class UnknownAnalyst(ReproError):
    """A query arrived from an analyst not registered in the provenance table."""


class DurabilityError(ReproError):
    """The write-ahead budget ledger or checkpoint machinery failed.

    Raised for misconfiguration (unknown fsync policy, unwritable data
    directory) and for refusing unsafe operations (compacting a corrupt
    ledger).  Budget already charged in memory is never released by a
    durability failure — the failure direction is always over-counting.
    """


class RecoveryError(DurabilityError):
    """Crash recovery refused to rebuild state from the data directory.

    Strict recovery raises this on a torn or corrupt ledger tail; both
    modes raise it on interior corruption or when the on-disk state does
    not match the engine being recovered into (different dataset,
    mechanism, or analyst roster).
    """


class ClosedError(ReproError):
    """An operation reached a service or session that is already closed.

    Carries a machine ``tag`` so transport layers can map the condition to
    a stable status code (the HTTP server returns 409 Conflict for both
    variants) without parsing the message text.
    """

    tag = "closed"


class ServiceClosed(ClosedError):
    """The :class:`repro.service.service.QueryService` has been shut down."""

    tag = "service_closed"


class SessionClosed(ClosedError):
    """The targeted session was explicitly closed and cannot submit again."""

    tag = "session_closed"
