"""Dependency-free end-to-end request tracing.

One :class:`Trace` is born per request (the daemon mints it from the
client's propagated trace id; in-process submissions mint their own) and
collects an ordered tree of :class:`Span` records — monotonic start
offsets and durations, a parent link, and a small attribute dict.  The
whole request path reports into it through two module-level helpers:

``span(name, **attrs)``
    Context manager recording one timed span under the currently active
    trace.  When no trace is active it is a cheap no-op (one
    ``ContextVar`` read), so instrumented hot paths cost nothing for
    untraced traffic.

``activate(trace)`` / ``capture()`` / ``activate_context(ctx)``
    Propagation.  ``ContextVar`` context does not follow work onto pool
    threads, so code that fans out (the shard pool, the mp dispatch
    pool) captures ``(trace, parent_span_id)`` before submitting and
    re-activates it inside the worker thread.

The mp backend's *processes* cannot share a ``Trace`` object at all:
workers record spans into their own trace (same trace id, their own
clock origin) and ship :meth:`Trace.export` over the pipe; the parent
grafts them under its dispatch span with :meth:`Trace.graft`, so a
worker's compute and the parent's provenance brokering appear as one
tree.

Finished traces land in a :class:`Tracer` ring buffer (bounded deque)
that ``GET /v1/trace`` serves.  Nothing here touches accounting, RNG
state, or lock order: tracing observes the request path, it never
steers it — replays stay bit-identical with tracing on or off.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar

#: Most spans one trace retains; later spans are counted in
#: :attr:`Trace.dropped` instead of recorded (a runaway batch must not
#: hold unbounded span lists alive in the ring buffer).
MAX_SPANS_PER_TRACE = 256

#: How many finished traces a :class:`Tracer` ring retains by default.
DEFAULT_TRACE_CAPACITY = 128

#: Default sampling stride: self-minted traces record one submission in
#: every N.  Explicitly propagated trace ids (a client asking to be
#: traced) always record.  The memoized serving path answers a query in
#: tens of microseconds, so tracing every request would tax the hot
#: path a measurable few percent; 1-in-N keeps ``/v1/trace`` populated
#: at negligible cost, and ``sample=1`` restores exhaustive tracing.
DEFAULT_TRACE_SAMPLE = 8

#: (trace, parent_span_id) of the currently active trace context.
_CURRENT: ContextVar[tuple | None] = ContextVar("repro_trace", default=None)


class Span:
    """One timed operation inside a trace (offsets are seconds from the
    trace's monotonic origin)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration",
                 "attrs")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = 0.0
        self.attrs: dict | None = None

    def set(self, **attrs) -> None:
        """Attach attributes (view name, shard index, outcome, ...)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def as_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start * 1e3, 6),
            "duration_ms": round(self.duration * 1e3, 6),
            "attrs": dict(self.attrs) if self.attrs else {},
        }


class Trace:
    """One request's span tree.  Thread-safe: shard/pool threads append
    concurrently under a small lock."""

    __slots__ = ("trace_id", "started_at", "_t0", "_lock", "spans",
                 "dropped")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.dropped = 0

    # -- recording -------------------------------------------------------------
    def begin_span(self, name: str, parent_id: int | None) -> Span | None:
        start = time.perf_counter() - self._t0
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
                return None
            span = Span(len(self.spans), parent_id, name, start)
            self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._t0) - span.start

    def add_span(self, name: str, start: float, end: float,
                 parent_id: int | None = None, **attrs) -> Span | None:
        """Retroactively record a span from two ``perf_counter`` readings
        (the body-read span is measured before the trace exists; a
        negative offset is honest, not an error)."""
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
                return None
            span = Span(len(self.spans), parent_id, name, start - self._t0)
            span.duration = max(0.0, end - start)
            if attrs:
                span.attrs = dict(attrs)
            self.spans.append(span)
        return span

    # -- cross-process shipping ------------------------------------------------
    def export(self) -> list[tuple]:
        """Plain-tuple span list for the mp pipe: ``(span_id, parent_id,
        name, start, duration, attrs)`` with offsets relative to *this*
        trace's origin."""
        with self._lock:
            return [(s.span_id, s.parent_id, s.name, s.start, s.duration,
                     dict(s.attrs) if s.attrs else None)
                    for s in self.spans]

    def graft(self, exported: list[tuple], parent_id: int | None,
              base_offset: float) -> None:
        """Adopt another process's :meth:`export` under ``parent_id``.

        Worker offsets are relative to the worker's own origin; they are
        shifted by ``base_offset`` (the parent-side dispatch span's
        start) — the two clocks are never compared directly.
        """
        id_map: dict[int, int] = {}
        with self._lock:
            for sid, pid, name, start, duration, attrs in exported:
                if len(self.spans) >= MAX_SPANS_PER_TRACE:
                    self.dropped += len(exported) - len(id_map)
                    break
                span = Span(len(self.spans),
                            id_map.get(pid, parent_id) if pid is not None
                            else parent_id,
                            name, base_offset + start)
                span.duration = duration
                if attrs:
                    span.attrs = dict(attrs)
                self.spans.append(span)
                id_map[sid] = span.span_id

    # -- reporting -------------------------------------------------------------
    def as_dict(self) -> dict:
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
            dropped = self.dropped
        return {
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "spans": spans,
            "dropped": dropped,
        }


class _SpanContext:
    """Class-based context manager for :func:`span` — cheaper than a
    generator-based one, and the serving path enters one per query."""

    __slots__ = ("_name", "_attrs", "_span", "_trace", "_token")

    def __init__(self, name: str, attrs: dict | None) -> None:
        self._name = name
        self._attrs = attrs
        self._span = None
        self._trace = None
        self._token = None

    def __enter__(self) -> Span | None:
        current = _CURRENT.get()
        if current is None:
            return None
        trace, parent_id = current
        span = trace.begin_span(self._name, parent_id)
        if span is None:
            return None
        if self._attrs:
            # The kwargs dict minted in span() is ours alone — take it.
            span.attrs = self._attrs
        self._span = span
        self._trace = trace
        self._token = _CURRENT.set((trace, span.span_id))
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is None:
            return
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self._span.set(error=exc_type.__name__)
        self._trace.end_span(self._span)


def span(name: str, **attrs) -> _SpanContext:
    """Record one timed span under the active trace (no-op without one)."""
    return _SpanContext(name, attrs or None)


def event(name: str, **attrs) -> None:
    """Record an instantaneous (zero-duration) span — the decision-point
    marker for paths too hot to wrap in a context manager."""
    current = _CURRENT.get()
    if current is None:
        return
    trace, parent_id = current
    marker = trace.begin_span(name, parent_id)
    if marker is not None and attrs:
        marker.attrs = attrs


def record_span(name: str, start: float, **attrs) -> None:
    """Retroactively record a finished span from an absolute
    ``perf_counter`` start reading (no-op without an active trace).

    The pattern for paths that only deserve a span on their rare
    expensive branch: read ``perf_counter()`` unconditionally (tens of
    nanoseconds), decide, and record after the fact only when it
    mattered — the common branch pays no span machinery at all.
    """
    current = _CURRENT.get()
    if current is None:
        return
    trace, parent_id = current
    trace.add_span(name, start, time.perf_counter(), parent_id, **attrs)


class _Activation:
    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: tuple | None) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self):
        self._token = _CURRENT.set(self._ctx)
        return self._ctx[0] if self._ctx is not None else None

    def __exit__(self, *exc_info) -> None:
        _CURRENT.reset(self._token)


def activate(trace: Trace | None, parent_id: int | None = None) -> _Activation:
    """Make ``trace`` the active trace for the ``with`` body
    (``activate(None)`` deactivates — useful to shield untraced work)."""
    return _Activation((trace, parent_id) if trace is not None else None)


def capture() -> tuple | None:
    """Snapshot ``(trace, parent_span_id)`` for hand-off to a pool thread
    (``ContextVar`` context does not follow ``ThreadPoolExecutor.submit``)."""
    return _CURRENT.get()


def activate_context(ctx: tuple | None) -> _Activation:
    """Re-activate a :func:`capture` snapshot on another thread."""
    return _Activation(ctx)


def current_trace() -> Trace | None:
    current = _CURRENT.get()
    return current[0] if current is not None else None


def current_span_start() -> float:
    """Start offset of the active span (0.0 without one) — the graft
    base for worker-exported spans."""
    current = _CURRENT.get()
    if current is None or current[1] is None:
        return 0.0
    trace, span_id = current
    return trace.spans[span_id].start


class Tracer:
    """Mints trace ids, owns the bounded ring of finished traces.

    ``enabled=False`` turns the whole facility off: :meth:`start`
    returns ``None``, ``activate(None)`` keeps the context empty, and
    every ``span()`` call degrades to a single ``ContextVar`` read —
    the configuration the ``bench-service --trace-overhead`` axis
    compares against.

    ``sample`` is the self-minted stride: :meth:`start` records one
    request in every ``sample`` when it has to mint the id itself, but
    *always* records when the caller propagates an explicit trace id
    (a client that asked to be traced must get its trace).  The first
    self-minted request is always recorded, so short sessions still
    populate ``/v1/trace``.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY,
                 enabled: bool = True,
                 sample: int = DEFAULT_TRACE_SAMPLE) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.sample = int(sample)
        self._lock = threading.Lock()
        self._ring: deque[Trace] = deque(maxlen=self.capacity)
        # Cheap unique ids: one random process prefix + a counter (a
        # fresh token per trace would cost more than the trace itself).
        self._prefix = os.urandom(4).hex()
        self._ids = itertools.count(1)
        # itertools.count.__next__ is a single C call, so the sampling
        # tick needs no lock of its own.
        self._tick = itertools.count()
        self.started = 0
        self.finished = 0

    def new_trace_id(self) -> str:
        return f"{self._prefix}-{next(self._ids):08x}"

    def start(self, trace_id: str | None = None) -> Trace | None:
        """A fresh :class:`Trace`, or ``None`` when disabled / when the
        sampler skips this request.  ``trace_id`` propagates a
        client-minted id (never sampled out); otherwise one is minted
        here, subject to the 1-in-``sample`` stride."""
        if not self.enabled:
            return None
        if trace_id is None and self.sample > 1 \
                and next(self._tick) % self.sample:
            return None
        with self._lock:
            self.started += 1
        return Trace(trace_id if trace_id else self.new_trace_id())

    def finish(self, trace: Trace | None) -> None:
        """File a completed trace into the ring (``None`` is a no-op, so
        callers need not branch on the disabled case)."""
        if trace is None:
            return
        with self._lock:
            self.finished += 1
            self._ring.append(trace)

    def recent(self, limit: int | None = None) -> list[dict]:
        """Finished traces, newest first, as JSON-native dicts."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        if limit is not None:
            traces = traces[:max(0, int(limit))]
        return [trace.as_dict() for trace in traces]

    def counters(self) -> dict:
        with self._lock:
            return {"enabled": self.enabled, "capacity": self.capacity,
                    "sample": self.sample,
                    "started": self.started, "finished": self.finished,
                    "retained": len(self._ring)}


__all__ = ["DEFAULT_TRACE_CAPACITY", "DEFAULT_TRACE_SAMPLE",
           "MAX_SPANS_PER_TRACE", "Span",
           "Trace", "Tracer", "activate", "activate_context", "capture",
           "current_trace", "current_span_start", "event", "record_span",
           "span"]
