"""Fairness metrics: DCFG and nDCFG (paper Definitions 17 and 18).

The discounted cumulative fairness gain rewards answering queries for
high-privilege analysts:

    DCFG = sum_i |Q_{A_i}| / log2(1/l_i + 1)

— the discount ``log2(1/l + 1)`` *decreases* with privilege ``l``, so a
query answered to a privilege-4 analyst contributes ~3.1x what the same
query to a privilege-1 analyst does (Example 7's numbers).  nDCFG divides by
the total answered so systems with different throughputs are comparable.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.exceptions import ReproError


def _discount(privilege: int) -> float:
    if privilege < 1:
        raise ReproError(f"privilege must be >= 1, got {privilege}")
    return math.log2(1.0 / privilege + 1.0)


def dcfg(answered: Mapping[str, int], privileges: Mapping[str, int]) -> float:
    """Discounted cumulative fairness gain (Def. 17)."""
    total = 0.0
    for analyst, count in answered.items():
        if count < 0:
            raise ReproError(f"negative query count for {analyst!r}")
        if analyst not in privileges:
            raise ReproError(f"no privilege level for analyst {analyst!r}")
        total += count / _discount(privileges[analyst])
    return total


def ndcfg(answered: Mapping[str, int], privileges: Mapping[str, int]) -> float:
    """Normalised DCFG (Def. 18): DCFG divided by total answered queries.

    Returns 0.0 when nothing was answered (a system that answers nothing is
    vacuously unfair-neutral rather than an error).
    """
    total_answered = sum(answered.values())
    if total_answered == 0:
        return 0.0
    return dcfg(answered, privileges) / total_answered


__all__ = ["dcfg", "ndcfg"]
