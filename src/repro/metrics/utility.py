"""Data-dependent utility metrics (paper Sec. 6.2.2, "other experiments")."""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ReproError


def relative_error(true_answer: float, noisy_answer: float,
                   floor: float = 1.0) -> float:
    """``|true - noisy| / max(true, floor)`` (Xiao et al., iReduct).

    ``floor`` is the constant ``c`` that keeps the metric defined when the
    true answer is zero or tiny.
    """
    if floor <= 0:
        raise ReproError(f"floor must be positive, got {floor}")
    return abs(true_answer - noisy_answer) / max(true_answer, floor)


def mean_relative_error(true_answers: Sequence[float],
                        noisy_answers: Sequence[float],
                        floor: float = 1.0) -> float:
    """Average relative error over a workload's answered queries."""
    if len(true_answers) != len(noisy_answers):
        raise ReproError("answer sequences must have equal length")
    if not true_answers:
        return 0.0
    errors = [relative_error(t, n, floor)
              for t, n in zip(true_answers, noisy_answers)]
    return sum(errors) / len(errors)


__all__ = ["mean_relative_error", "relative_error"]
