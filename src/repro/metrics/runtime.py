"""Runtime instrumentation: wall-clock helpers and cache counters.

:class:`Stopwatch` backs the paper's runtime tables; :class:`CacheStats`
backs the service layer's synopsis-cache reporting (hit/miss/eviction
counters exported by ``repro.service``).
"""

from __future__ import annotations

import threading
import time


class Stopwatch:
    """Context manager accumulating wall-clock seconds across uses.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.seconds += time.perf_counter() - self._started
        self._started = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


class CompensatedSum:
    """Neumaier-compensated running sum of floats.

    A plain ``total += x`` accumulator loses low-order bits on every
    addition; over a long run of small epsilon charges the service's
    per-analyst totals drift away from the provenance table's ledger.
    Kahan–Babuska (Neumaier) compensation keeps the running error at one
    rounding of the final sum regardless of length.  Not thread-safe on
    its own — callers mutate it under their own lock (the service's
    stats lock).

    >>> s = CompensatedSum()
    >>> for _ in range(10):
    ...     s.add(0.1)
    >>> s.value == 1.0
    True
    """

    __slots__ = ("_total", "_compensation")

    def __init__(self, value: float = 0.0) -> None:
        self._total = float(value)
        self._compensation = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        total = self._total + value
        if abs(self._total) >= abs(value):
            self._compensation += (self._total - total) + value
        else:
            self._compensation += (value - total) + self._total
        self._total = total

    @property
    def value(self) -> float:
        return self._total + self._compensation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompensatedSum({self.value!r})"


class CacheStats:
    """Thread-safe hit/miss/eviction counters for a bounded cache.

    >>> stats = CacheStats()
    >>> stats.record_hit(); stats.record_miss()
    >>> stats.hit_rate
    0.5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never probed)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")


__all__ = ["CacheStats", "CompensatedSum", "Stopwatch"]
