"""Wall-clock measurement helpers for the runtime tables."""

from __future__ import annotations

import time


class Stopwatch:
    """Context manager accumulating wall-clock seconds across uses.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.seconds += time.perf_counter() - self._started
        self._started = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


__all__ = ["Stopwatch"]
