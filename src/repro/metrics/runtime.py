"""Runtime instrumentation: wall-clock helpers and cache counters.

:class:`Stopwatch` backs the paper's runtime tables; :class:`CacheStats`
backs the service layer's synopsis-cache reporting (hit/miss/eviction
counters exported by ``repro.service``).
"""

from __future__ import annotations

import threading
import time


class Stopwatch:
    """Context manager accumulating wall-clock seconds across uses.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.seconds += time.perf_counter() - self._started
        self._started = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


class CacheStats:
    """Thread-safe hit/miss/eviction counters for a bounded cache.

    >>> stats = CacheStats()
    >>> stats.record_hit(); stats.record_miss()
    >>> stats.hit_rate
    0.5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never probed)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")


__all__ = ["CacheStats", "Stopwatch"]
