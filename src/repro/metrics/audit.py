"""Privacy-budget audit trail: ledger fold, burn rates, forecasts.

DProvDB's contribution is *accounting* — yet totals alone don't tell an
operator how the budget got spent or when an analyst will hit their cap.
This module derives that story from state the system already keeps:

:func:`fold_data_dir` (offline)
    Replays a durability data directory — checkpoint ⊕ sealed segments ⊕
    active ledger tail — into an :class:`AuditReport`: an ordered spend
    timeline plus per-(analyst, view, mechanism) cumulative totals.  The
    fold mirrors :func:`repro.persistence.recovery.recover_service`'s
    arithmetic *exactly* (checkpoint entries in stored order, then tail
    records in sequence order, then the permissive-mode salvage), so its
    totals are bit-for-bit equal to what a recovering daemon would serve
    — the property ``repro audit --verify`` asserts against a live
    ``/v1/metrics``.  The fold takes the data-dir flock when free; when a
    live daemon holds it, it falls back to a lockless optimistic read
    that re-checks the checkpoint sequence after reading the chain and
    retries if a concurrent compaction moved it (reading the checkpoint
    and the ledger across a compaction would under-count).

:class:`AuditTrail` (live)
    An incremental tailer the service attaches *after* durability binds:
    it wraps ``ProvenanceTable.on_commit`` / ``DelegationManager
    .on_event`` in a fan-out (durability journals first — it assigns the
    sequence number — then the trail records; ``try/finally`` keeps the
    trail aligned with the in-memory table even when the journal append
    raises).  Hooks fire outside the provenance/delegation locks, the
    same discipline durability relies on.  The trail maintains a bounded
    in-RAM event ring (the ``GET /v1/audit`` pages), per-analyst sliding
    burn-rate windows (ε/min), and linear exhaustion forecasts
    (seconds-to-cap per analyst / coalition / table, ``inf`` when idle).
    The fast lane never charges, so it never enters the trail — the
    tailer's hot-path cost on memoized answers is structurally zero.

The cumulative ``repro_epsilon_spent_total{analyst,view,mechanism}``
counter family is deliberately *not* double-booked in the trail: the
scrape callback reads the provenance table itself (see
``QueryService.bind_telemetry``), so the wire can never disagree with
the accounting it reports.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import DurabilityError, RecoveryError
from repro.persistence.checkpoint import read_checkpoint
from repro.persistence.manager import (
    acquire_data_dir_lock,
    release_data_dir_lock,
)
from repro.persistence.recovery import (
    CHECKPOINT_FILE,
    RECOVERY_MODES,
    read_accounting_state,
)

#: Sliding burn-rate windows (seconds) the live tailer maintains.  The
#: shortest drives the exhaustion forecasts (most responsive to the
#: current spend pattern); all are exported as labelled gauge series.
DEFAULT_WINDOWS = (60.0, 300.0)

#: How many recent events ``/v1/audit`` retains in RAM.
DEFAULT_RING = 2048

#: Hard per-analyst cap on retained window samples: bounds memory under
#: pathological charge rates at the cost of under-counting the burn rate
#: (never the budget — windows are telemetry, the ledger is accounting).
_MAX_WINDOW_EVENTS = 65536

#: How many times the lockless fold retries when a live daemon keeps
#: compacting between the checkpoint read and the chain read.
_LOCKLESS_RETRIES = 8


def classify_charge(fields) -> str:
    """Mechanism label for one charge record (or commit-hook ``meta``).

    Every zCDP charge carries ``rho``, every additive charge carries
    ``global_after``, and vanilla charges carry neither — invariants of
    the three mechanisms' single charge sites, so this classification
    agrees exactly with ``engine.mechanism.name`` for every record the
    engine ever journals.
    """
    if fields.get("rho") is not None:
        return "vanilla_zcdp"
    if fields.get("global_after") is not None:
        return "additive"
    return "vanilla"


@dataclass(frozen=True)
class AuditReport:
    """One offline fold of a data directory into a spend timeline."""

    data_dir: str
    mode: str
    locked: bool
    checkpoint_found: bool
    checkpoint_seq: int
    checkpoint_ts: float | None
    mechanism: str | None
    torn_tail: bool
    salvaged_charges: int
    records_seen: int
    charges: int
    sessions: int
    grants: int
    last_seq: int
    #: (analyst, view, mechanism) -> cumulative epsilon, folded with the
    #: exact float-op order recovery uses (bitwise comparable to a live
    #: table rebuilt from the same chain).
    cells: dict = field(default_factory=dict)
    row_totals: dict = field(default_factory=dict)
    table_total: float = 0.0
    #: Ordered post-checkpoint timeline: charge / session / grant dicts.
    events: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "data_dir": self.data_dir, "mode": self.mode,
            "locked": self.locked,
            "checkpoint_found": self.checkpoint_found,
            "checkpoint_seq": self.checkpoint_seq,
            "checkpoint_ts": self.checkpoint_ts,
            "mechanism": self.mechanism,
            "torn_tail": self.torn_tail,
            "salvaged_charges": self.salvaged_charges,
            "records_seen": self.records_seen,
            "charges": self.charges, "sessions": self.sessions,
            "grants": self.grants, "last_seq": self.last_seq,
            "cells": [{"analyst": analyst, "view": view,
                       "mechanism": mechanism, "eps": eps}
                      for (analyst, view, mechanism), eps
                      in sorted(self.cells.items())],
            "row_totals": dict(sorted(self.row_totals.items())),
            "table_total": self.table_total,
            "events": list(self.events),
        }


def fold_data_dir(data_dir: str | Path, mode: str = "strict") -> AuditReport:
    """Fold ``data_dir`` into an :class:`AuditReport`; see module doc.

    Read-only: takes the data-dir flock when free (consistent view), and
    degrades to the lockless optimistic read when a live daemon holds it
    — the ``--verify`` deployment mode.  ``mode`` follows recovery:
    ``strict`` refuses a torn tail, ``permissive`` salvages past it;
    interior corruption is refused in both.
    """
    if mode not in RECOVERY_MODES:
        raise RecoveryError(f"unknown audit mode {mode!r}; "
                            f"choose from {RECOVERY_MODES}")
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        raise DurabilityError(f"data directory {data_dir} does not exist")
    try:
        lock = acquire_data_dir_lock(data_dir)
    except DurabilityError:
        lock = None  # a live daemon owns it: lockless optimistic read
    try:
        if lock is not None:
            checkpoint, records, tail = read_accounting_state(data_dir)
            return _fold(data_dir, mode, checkpoint, records, tail,
                         locked=True)
        for _ in range(_LOCKLESS_RETRIES):
            checkpoint, records, tail = read_accounting_state(data_dir)
            recheck = read_checkpoint(data_dir / CHECKPOINT_FILE)
            before = checkpoint["ledger_seq"] if checkpoint else 0
            after = recheck["ledger_seq"] if recheck else 0
            if before == after:
                return _fold(data_dir, mode, checkpoint, records, tail,
                             locked=False)
        raise DurabilityError(
            f"data directory {data_dir} kept compacting under the "
            f"lockless read; retry when the daemon is less busy")
    finally:
        release_data_dir_lock(lock)


def _fold(data_dir: Path, mode: str, checkpoint: dict | None,
          records: list, tail, *, locked: bool) -> AuditReport:
    """The pure fold: recovery's replay rules, accounting-only.

    Float discipline: one running accumulator per cell / row / table,
    advanced in exactly the order ``restore_engine_state`` +
    ``recover_service`` advance the live table — checkpoint entries in
    stored (analyst-major) order, then records in sequence order, then
    the salvage.  IEEE addition is order-sensitive; matching the order
    is what makes ``--verify``'s exact-equality contract possible.
    """
    rows: dict[str, float] = {}
    cells: dict[tuple, float] = {}
    table = 0.0
    events: list[dict] = []

    checkpoint_seq = 0
    checkpoint_ts = None
    mechanism = None
    if checkpoint is not None:
        checkpoint_seq = int(checkpoint["ledger_seq"])
        checkpoint_ts = checkpoint.get("created_ts")
        engine_state = checkpoint.get("engine", {})
        mechanism = engine_state.get("mechanism")
        for analyst, row in engine_state.get("provenance", {}).items():
            for view, eps in row.items():
                eps = float(eps)
                rows[analyst] = rows.get(analyst, 0.0) + eps
                key = (analyst, view, mechanism)
                cells[key] = cells.get(key, 0.0) + eps
                table += eps

    if tail.status == "corrupt":
        raise RecoveryError(
            f"ledger in {data_dir} line {tail.line_no} is damaged "
            f"({tail.reason}) but valid records follow — interior "
            f"corruption; refusing to audit (skipping the record would "
            f"under-count spent budget)")
    torn = tail.status == "torn"
    if torn and mode != "permissive":
        raise RecoveryError(
            f"ledger in {data_dir} has a torn tail at line "
            f"{tail.line_no} ({tail.reason}); rerun with --permissive "
            f"to audit past it (matching permissive recovery)")

    charges = sessions = grants = 0
    last_seq = checkpoint_seq

    def apply_charge(record: dict, salvaged: bool = False) -> None:
        nonlocal table, charges
        analyst = record["analyst"]
        view = record["view"]
        eps = float(record["eps"])
        label = classify_charge(record)
        rows[analyst] = rows.get(analyst, 0.0) + eps
        key = (analyst, view, label)
        cells[key] = cells.get(key, 0.0) + eps
        table += eps
        charges += 1
        event = {"seq": record["seq"], "ts": record.get("ts"),
                 "kind": "charge", "analyst": analyst, "view": view,
                 "eps": eps, "mode": record.get("mode"),
                 "mechanism": label, "cumulative": rows[analyst]}
        if salvaged:
            event["salvaged"] = True
        events.append(event)

    for record in records:
        last_seq = max(last_seq, record["seq"])
        if record["seq"] <= checkpoint_seq:
            continue  # already folded into the checkpoint
        kind = record["t"]
        if kind == "charge":
            apply_charge(record)
        elif kind == "grant":
            grants += 1
            events.append({
                "seq": record["seq"], "ts": record.get("ts"),
                "kind": "grant", "event": record.get("event"),
                "grant_id": record.get("grant_id"),
                "grantor": record.get("grantor"),
                "grantee": record.get("grantee"),
                "analyst": record.get("grantee"),
                "eps": (float(record["eps"])
                        if record.get("eps") is not None else None)})
        else:
            sessions += 1
            events.append({
                "seq": record["seq"], "ts": record.get("ts"),
                "kind": "session", "event": record.get("event"),
                "session_id": record.get("session_id"),
                "analyst": record.get("analyst")})

    salvaged_charges = 0
    if torn and tail.salvage is not None:
        seq = tail.salvage["seq"]
        if seq > checkpoint_seq:
            apply_charge(tail.salvage, salvaged=True)
            salvaged_charges = 1
            last_seq = max(last_seq, seq)

    return AuditReport(
        data_dir=str(data_dir), mode=mode, locked=locked,
        checkpoint_found=checkpoint is not None,
        checkpoint_seq=checkpoint_seq, checkpoint_ts=checkpoint_ts,
        mechanism=mechanism, torn_tail=torn,
        salvaged_charges=salvaged_charges,
        records_seen=len(records) + salvaged_charges,
        charges=charges, sessions=sessions, grants=grants,
        last_seq=last_seq, cells=cells, row_totals=rows,
        table_total=table, events=events)


def format_audit_report(report: AuditReport, *, analyst: str | None = None,
                        limit: int = 20) -> str:
    """Operator-facing table: totals first, then the newest events."""
    lines = [f"audit ({report.mode}) of {report.data_dir} "
             f"[{'flock' if report.locked else 'lockless'}]:"]
    checkpoint = (f"seq <= {report.checkpoint_seq}"
                  if report.checkpoint_found else "none")
    lines.append(f"  checkpoint: {checkpoint}")
    lines.append(f"  ledger: {report.records_seen} record(s) — "
                 f"{report.charges} charge(s), {report.sessions} "
                 f"session event(s), {report.grants} grant event(s)")
    if report.torn_tail:
        lines.append(f"  torn tail: yes — {report.salvaged_charges} "
                     f"charge(s) salvaged")
    names = [analyst] if analyst is not None else sorted(report.row_totals)
    for name in names:
        lines.append(f"  {name}: eps {report.row_totals.get(name, 0.0):.6f}")
        for (owner, view, mechanism), eps in sorted(report.cells.items()):
            if owner == name:
                lines.append(f"    {view} [{mechanism}]: eps {eps:.6f}")
    lines.append(f"  table total: {report.table_total:.6f}")
    shown = [event for event in report.events
             if analyst is None or event.get("analyst") == analyst]
    if shown:
        lines.append(f"  newest events (of {len(shown)}):")
        for event in shown[-max(0, limit):]:
            if event["kind"] == "charge":
                lines.append(
                    f"    seq {event['seq']}: charge {event['analyst']} "
                    f"{event['view']} eps {event['eps']:.6f} "
                    f"[{event['mechanism']}] -> {event['cumulative']:.6f}")
            elif event["kind"] == "session":
                lines.append(
                    f"    seq {event['seq']}: session {event['event']} "
                    f"#{event['session_id']} ({event['analyst']})")
            else:
                lines.append(
                    f"    seq {event['seq']}: grant {event['event']} "
                    f"#{event['grant_id']}")
    return "\n".join(lines)


def verify_report(report: AuditReport, families: dict) -> list[str]:
    """Cross-check a fold against a live ``/v1/metrics`` scrape.

    ``families`` is :func:`repro.metrics.telemetry.parse_exposition`
    output.  Returns human-readable mismatch lines (empty == verified).
    Every comparison is **exact** float equality: both sides execute the
    identical op sequence and ``repr(float)`` round-trips through the
    exposition, so any difference means the wire changed accounting.
    """
    problems: list[str] = []
    live_cells = {}
    for labels, value in families.get("repro_epsilon_spent_total",
                                      {}).items():
        by = dict(labels)
        live_cells[(by.get("analyst"), by.get("view"),
                    by.get("mechanism"))] = value
    for key in sorted(set(live_cells) | set(report.cells)):
        mine = report.cells.get(key, 0.0)
        theirs = live_cells.get(key, 0.0)
        if mine != theirs:
            problems.append(
                f"cell {key}: replay {mine!r} != live {theirs!r}")

    live_rows = {dict(labels).get("analyst"): value
                 for labels, value in
                 families.get("repro_epsilon_row_total", {}).items()}
    for name in sorted(set(live_rows) | set(report.row_totals)):
        mine = report.row_totals.get(name, 0.0)
        theirs = live_rows.get(name, 0.0)
        if mine != theirs:
            problems.append(
                f"analyst {name!r}: replay {mine!r} != live {theirs!r}")

    live_table = families.get("repro_epsilon_table_total", {})
    if live_table:
        theirs = next(iter(live_table.values()))
        if report.table_total != theirs:
            problems.append(f"table total: replay {report.table_total!r} "
                            f"!= live {theirs!r}")
    else:
        problems.append("live metrics carry no repro_epsilon_table_total "
                        "gauge; is the URL a repro daemon?")
    return problems


class AuditTrail:
    """Live budget tailer: event ring, burn windows, forecasts.

    One instance per :class:`~repro.service.service.QueryService`;
    :meth:`attach` wires it behind whatever hooks are already installed
    (durability's, or none).  All mutators take one small internal lock
    — the commit-hook path is a handful of dict/deque updates, cheap
    against the noise-release work a fresh charge already paid for.

    ``time_fn`` is injectable so burn-window tests are deterministic.
    """

    def __init__(self, engine, durability=None, *,
                 windows=DEFAULT_WINDOWS, ring: int = DEFAULT_RING,
                 time_fn=time.time) -> None:
        spans = tuple(sorted(float(w) for w in windows))
        if not spans or any(w <= 0 for w in spans):
            raise ValueError(f"burn windows must be positive, got {windows}")
        # Weakly held: attach() installs closures over this trail into
        # ``provenance.on_commit`` — a strong engine reference here
        # would close the cycle trail -> engine -> provenance -> trail
        # and keep a dropped service (and its durability flock) alive
        # until a mark-and-sweep pass instead of dying by refcount.
        self._engine_ref = weakref.ref(engine)
        self.durability = durability
        self.windows = spans
        self._time = time_fn
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max(1, int(ring)))
        self._event_seq = 0
        self._spend: dict[str, deque] = {}
        self._charges = 0
        self._sessions = 0
        self._grants = 0

    @property
    def engine(self):
        """The audited engine (``None`` once its service is gone)."""
        return self._engine_ref()

    # -- wiring ----------------------------------------------------------------
    def attach(self, service) -> None:
        """Fan the provenance/delegation hooks out through this trail.

        Must run *after* durability binds (recovery refuses to replay
        through live hooks, and the ledger append should keep assigning
        the sequence number before the trail reads it).  ``try/finally``
        records the charge even when the prior hook raises: the
        in-memory table already committed it, and the trail must never
        under-report relative to the table it narrates.
        """
        provenance = service.engine.provenance
        delegations = service.engine.delegations

        prior_commit = provenance.on_commit

        def _commit(analyst, view, epsilon, mode, meta,
                    _prior=prior_commit, _record=self.record_charge):
            if _prior is None:
                _record(analyst, view, epsilon, mode, meta)
                return
            try:
                _prior(analyst, view, epsilon, mode, meta)
            finally:
                _record(analyst, view, epsilon, mode, meta)

        provenance.on_commit = _commit

        prior_event = delegations.on_event

        def _event(event, payload,
                   _prior=prior_event, _record=self.record_grant):
            if _prior is None:
                _record(event, payload)
                return
            try:
                _prior(event, payload)
            finally:
                _record(event, payload)

        delegations.on_event = _event

    # -- mutators (hot path for charges) ---------------------------------------
    def record_charge(self, analyst: str, view: str, epsilon: float,
                      mode: str, meta=None) -> None:
        now = self._time()
        epsilon = float(epsilon)
        mechanism = classify_charge(meta or {})
        ledger_seq = (self.durability.ledger_seq
                      if self.durability is not None else None)
        engine = self.engine
        cumulative = (engine.provenance.row_total(analyst)
                      if engine is not None else 0.0)
        with self._lock:
            self._charges += 1
            self._event_seq += 1
            spend = self._spend.get(analyst)
            if spend is None:
                spend = self._spend[analyst] = \
                    deque(maxlen=_MAX_WINDOW_EVENTS)
            spend.append((now, epsilon))
            self._prune_locked(spend, now)
            self._events.append({
                "audit_seq": self._event_seq, "ts": now,
                "kind": "charge", "analyst": analyst, "view": view,
                "eps": epsilon, "mode": mode, "mechanism": mechanism,
                "cumulative": cumulative, "ledger_seq": ledger_seq})

    def record_session(self, event: str, session_id: int, analyst: str,
                       epsilon_spent: float = 0.0) -> None:
        now = self._time()
        with self._lock:
            self._sessions += 1
            self._event_seq += 1
            self._events.append({
                "audit_seq": self._event_seq, "ts": now,
                "kind": "session", "event": event,
                "session_id": int(session_id), "analyst": analyst,
                "eps": float(epsilon_spent)})

    def record_grant(self, event: str, payload: dict) -> None:
        now = self._time()
        with self._lock:
            self._grants += 1
            self._event_seq += 1
            entry = {"audit_seq": self._event_seq, "ts": now,
                     "kind": "grant", "event": event,
                     "analyst": payload.get("grantee")}
            entry.update(payload)
            self._events.append(entry)

    def _prune_locked(self, spend: deque, now: float) -> None:
        horizon = now - self.windows[-1]
        while spend and spend[0][0] < horizon:
            spend.popleft()

    # -- reads -----------------------------------------------------------------
    def events(self, *, analyst: str | None = None, since_seq: int = 0,
               limit: int = 256) -> list[dict]:
        """Oldest-first page of retained events after ``since_seq``.

        ``audit_seq`` is the page cursor (trail-local, monotonic; the
        durable ``ledger_seq`` rides along on charge events).  The ring
        is bounded, so a lagging consumer can miss events — the cursor
        gap makes that detectable.
        """
        with self._lock:
            items = list(self._events)
        page = [dict(event) for event in items
                if event["audit_seq"] > since_seq
                and (analyst is None or event.get("analyst") == analyst)]
        return page[:max(0, int(limit))]

    def burn_rates(self, window: float | None = None) -> dict[str, float]:
        """ε/min per analyst over the trailing ``window`` seconds."""
        span = self.windows[0] if window is None else float(window)
        now = self._time()
        cutoff = now - span
        out: dict[str, float] = {}
        with self._lock:
            for analyst, spend in self._spend.items():
                self._prune_locked(spend, now)
                total = sum(eps for ts, eps in spend if ts >= cutoff)
                out[analyst] = total * 60.0 / span
        return out

    def exhaustion(self, window: float | None = None) -> dict[str, float]:
        """Projected seconds until each analyst's cap at the current
        burn rate: ``inf`` when idle, ``0.0`` when already at/over."""
        engine = self.engine
        if engine is None:
            return {}
        rates = self.burn_rates(window)
        constraints = engine.constraints
        rows = engine.provenance.row_totals()
        out: dict[str, float] = {}
        for analyst in constraints.analyst:
            out[analyst] = _project(
                constraints.analyst_limit(analyst) - rows.get(analyst, 0.0),
                rates.get(analyst, 0.0) / 60.0)
        return out

    def table_exhaustion(self, window: float | None = None) -> float:
        """Projected seconds until the table cap at the summed rate."""
        engine = self.engine
        if engine is None:
            return math.inf
        rate = sum(self.burn_rates(window).values()) / 60.0
        remaining = (engine.constraints.table
                     - engine.provenance.table_total())
        return _project(remaining, rate)

    def group_exhaustion(self, window: float | None = None) \
            -> dict[str, float]:
        """Per-coalition forecasts (Sec. 7.1 groups); empty without
        groups.  Keys are coalition indices as strings (stable labels)."""
        engine = self.engine
        if engine is None:
            return {}
        constraints = engine.constraints
        if not constraints.groups:
            return {}
        rates = self.burn_rates(window)
        rows = engine.provenance.row_totals()
        out: dict[str, float] = {}
        for index, group in enumerate(constraints.groups):
            rate = sum(rates.get(name, 0.0) for name in group) / 60.0
            spent = sum(rows.get(name, 0.0) for name in group)
            out[str(index)] = _project(constraints.group_limit - spent,
                                       rate)
        return out

    def describe(self) -> dict:
        """JSON-native block for ``/v1/audit`` and ``snapshot()``."""
        with self._lock:
            return {
                "enabled": True,
                "charges": self._charges,
                "sessions": self._sessions,
                "grants": self._grants,
                "retained_events": len(self._events),
                "next_seq": self._event_seq + 1,
                "windows": list(self.windows),
            }


def _project(remaining: float, rate_per_sec: float) -> float:
    if remaining <= 0.0:
        return 0.0
    if rate_per_sec <= 0.0:
        return math.inf
    return remaining / rate_per_sec


__all__ = [
    "AuditReport",
    "AuditTrail",
    "DEFAULT_RING",
    "DEFAULT_WINDOWS",
    "classify_charge",
    "fold_data_dir",
    "format_audit_report",
    "verify_report",
]
