"""Serving-side telemetry: a tiny Prometheus-text metric registry.

The daemon's ``/v1/metrics`` endpoint is backed by one
:class:`TelemetryRegistry` holding three metric shapes:

``Counter``
    Monotone totals with optional labels (requests per route, responses
    per status, 429s per analyst).  Incremented on the serving path, so
    the implementation is a dict update under one small lock — no
    allocation, no string formatting until scrape time.

``gauge`` (callback)
    Point-in-time readings pulled at scrape time from live objects — the
    service's :class:`~repro.service.service.ServiceStats`, the synopsis
    cache, the fast lane, the shard manager, and the durability
    manager's ledger lag.  Registering a callback instead of pushing
    values keeps the serving path free of double bookkeeping: the scrape
    reads the same counters ``/v1/snapshot`` serializes, so the two
    endpoints can never disagree.

``Summary``
    Latency percentiles per label set (p50/p95 per route) over a bounded
    reservoir of recent observations, plus exact ``_count``/``_sum``
    series so rates survive the reservoir bound.

:meth:`TelemetryRegistry.render` emits the Prometheus text exposition
format (``# HELP``/``# TYPE`` + ``name{label="v"} value`` lines), which
any Prometheus-compatible scraper ingests directly.  Everything here is
stdlib-only and thread-safe.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Callable, Iterable, Sequence

#: How many recent observations a :class:`Summary` keeps per label set
#: for its percentile estimates (``_count``/``_sum`` stay exact).
DEFAULT_RESERVOIR = 2048

#: The quantiles every :class:`Summary` renders.
SUMMARY_QUANTILES = (0.5, 0.95)

#: Default :class:`Histogram` bucket bounds (seconds): sub-millisecond
#: fast-lane hits through multi-second batch submissions.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone labelled counter (one value per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, value: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set (handy for tests and gauges)."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> Iterable[tuple[dict[str, str], float]]:
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(key), value


class Summary:
    """Per-label-set latency summary: exact count/sum + recent quantiles."""

    kind = "summary"

    def __init__(self, name: str, help_text: str,
                 reservoir: int = DEFAULT_RESERVOIR) -> None:
        self.name = name
        self.help = help_text
        self._reservoir = max(1, int(reservoir))
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...],
                           tuple[list, deque]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = self._series[key] = (
                    [0, 0.0], deque(maxlen=self._reservoir))
            entry[0][0] += 1
            entry[0][1] += value
            entry[1].append(value)

    def count(self, **labels: str) -> int:
        with self._lock:
            entry = self._series.get(_label_key(labels))
            return int(entry[0][0]) if entry else 0

    def quantile(self, fraction: float, **labels: str) -> float:
        """Nearest-rank quantile over the retained reservoir (0.0 empty)."""
        with self._lock:
            entry = self._series.get(_label_key(labels))
            window = sorted(entry[1]) if entry else []
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, int(fraction * len(window))))
        return window[rank]

    def samples(self) -> Iterable[tuple[str, dict[str, str], float]]:
        """Yield ``(suffix, labels, value)`` rows for rendering."""
        with self._lock:
            snapshot = [(dict(key), int(counts[0]), float(counts[1]),
                         sorted(window))
                        for key, (counts, window) in self._series.items()]
        for labels, count, total, window in snapshot:
            for fraction in SUMMARY_QUANTILES:
                if window:
                    rank = min(len(window) - 1,
                               max(0, int(fraction * len(window))))
                    value = window[rank]
                else:
                    value = 0.0
                yield "", {**labels, "quantile": str(fraction)}, value
            yield "_count", labels, float(count)
            yield "_sum", labels, total


class Histogram:
    """Per-label-set histogram with Prometheus cumulative semantics.

    Observations land in fixed buckets (upper bounds, plus the implicit
    ``+Inf`` overflow); :meth:`samples` renders the *cumulative*
    ``_bucket{le=...}`` series Prometheus expects — every bucket counts
    all observations at or below its bound, and ``le="+Inf"`` always
    equals ``_count``.  Unlike :class:`Summary`'s bounded reservoir,
    every series here is exact over the full lifetime, so scrapers can
    derive any quantile by interpolation *and* rates stay correct no
    matter how long the window.  ``observe`` is one ``bisect`` plus two
    adds under a small lock — cheap enough for the request hot path.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one "
                             f"bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bucket bounds must be "
                             f"strictly increasing, got {bounds}")
        self.name = name
        self.help = help_text
        self.buckets = bounds
        self._lock = threading.Lock()
        #: label key -> ([per-slot counts, +Inf slot last], [count, sum])
        self._series: dict[tuple[tuple[str, str], ...],
                           tuple[list, list]] = {}

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        slot = bisect.bisect_left(self.buckets, value)
        key = _label_key(labels)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = self._series[key] = (
                    [0] * (len(self.buckets) + 1), [0, 0.0])
            entry[0][slot] += 1
            entry[1][0] += 1
            entry[1][1] += value

    def count(self, **labels: str) -> int:
        with self._lock:
            entry = self._series.get(_label_key(labels))
            return int(entry[1][0]) if entry else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            entry = self._series.get(_label_key(labels))
            return float(entry[1][1]) if entry else 0.0

    def bucket_counts(self, **labels: str) -> dict[str, int]:
        """Cumulative ``{le: count}`` for one label set (test helper)."""
        with self._lock:
            entry = self._series.get(_label_key(labels))
            slots = list(entry[0]) if entry else \
                [0] * (len(self.buckets) + 1)
        out: dict[str, int] = {}
        running = 0
        for bound, slot in zip(self.buckets, slots):
            running += slot
            out[_format_value(bound)] = running
        out["+Inf"] = running + slots[-1]
        return out

    def samples(self) -> Iterable[tuple[str, dict[str, str], float]]:
        """Yield ``(suffix, labels, value)`` rows for rendering."""
        with self._lock:
            snapshot = [(dict(key), list(slots), int(totals[0]),
                         float(totals[1]))
                        for key, (slots, totals) in self._series.items()]
        for labels, slots, count, total in snapshot:
            running = 0
            for bound, slot in zip(self.buckets, slots):
                running += slot
                yield ("_bucket", {**labels, "le": _format_value(bound)},
                       float(running))
            yield "_bucket", {**labels, "le": "+Inf"}, float(count)
            yield "_count", labels, float(count)
            yield "_sum", labels, total


class _CallbackCounterFamily:
    """Counter family whose values are pulled at scrape time.

    For monotone totals whose authoritative accumulators already live in
    another subsystem (the provenance table behind the budget-audit
    counter family): double-booking them on the hot path could drift by
    a float ulp under concurrency, and the whole point of the exposition
    is that it can *never* disagree with the accounting it reports.  The
    callback returns ``(labels_dict, value)`` rows; the rendered TYPE is
    ``counter`` because the underlying quantities only ever grow.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._sources: list[Callable] = []

    def add(self, fn: Callable) -> None:
        self._sources.append(fn)

    def samples(self) -> Iterable[tuple[dict[str, str], float]]:
        for fn in list(self._sources):
            try:
                rows = fn()
            except Exception:
                continue  # a scrape must never fail with the service
            for labels, value in rows:
                yield dict(labels), float(value)


class _GaugeGroup:
    """Callback-backed gauge: values are pulled at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        #: ``(fixed_labels, expand_label, callback)`` registrations.  A
        #: plain callback yields one sample; with ``expand_label`` the
        #: callback returns ``{label_value: number}`` and yields one
        #: sample per key (per-analyst series).
        self._sources: list[tuple[dict[str, str], str | None,
                                  Callable]] = []

    def add(self, fn: Callable, expand_label: str | None,
            labels: dict[str, str]) -> None:
        self._sources.append((dict(labels), expand_label, fn))

    def samples(self) -> Iterable[tuple[dict[str, str], float]]:
        for labels, expand, fn in list(self._sources):
            try:
                value = fn()
            except Exception:
                continue  # a scrape must never fail with the service
            if expand is None:
                yield labels, float(value)
            else:
                for key, item in dict(value).items():
                    yield {**labels, expand: str(key)}, float(item)


class TelemetryRegistry:
    """Create-or-get metric factory plus the Prometheus text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory: Callable, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind}")
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help_text), "counter")

    def summary(self, name: str, help_text: str = "",
                reservoir: int = DEFAULT_RESERVOIR) -> Summary:
        return self._get_or_create(
            name, lambda: Summary(name, help_text, reservoir), "summary")

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), "histogram")

    def counter_family(self, name: str, help_text: str,
                       fn: Callable) -> None:
        """Register a scrape-time callback rendered as a counter family.

        ``fn`` returns an iterable of ``(labels_dict, value)`` rows —
        arbitrary label sets, unlike :meth:`gauge`'s single
        ``expand_label``.  Use only for quantities that are genuinely
        monotone at their source.
        """
        group = self._get_or_create(
            name, lambda: _CallbackCounterFamily(name, help_text),
            "counter")
        if not isinstance(group, _CallbackCounterFamily):
            raise ValueError(f"metric {name!r} already registered as a "
                             f"push-style Counter")
        group.add(fn)

    def gauge(self, name: str, help_text: str, fn: Callable, *,
              expand_label: str | None = None, **labels: str) -> None:
        """Register a scrape-time callback for ``name``.

        ``fn`` returns a number; with ``expand_label`` it returns a
        ``{label_value: number}`` dict rendered as one series per key.
        Multiple registrations under one name (with distinct fixed
        labels) merge into one metric family.
        """
        group = self._get_or_create(
            name, lambda: _GaugeGroup(name, help_text), "gauge")
        group.add(fn, expand_label, labels)

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, (Summary, Histogram)):
                for suffix, labels, value in metric.samples():
                    lines.append(f"{name}{suffix}{_format_labels(labels)} "
                                 f"{_format_value(value)}")
            else:
                for labels, value in metric.samples():
                    lines.append(f"{name}{_format_labels(labels)} "
                                 f"{_format_value(value)}")
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, dict[tuple[tuple[str, str], ...],
                                                  float]]:
    """Parse Prometheus text back into ``{name: {label_key: value}}``.

    A deliberately strict reader used by the tests and the smoke script
    to assert the endpoint's output round-trips; unknown syntax raises
    ``ValueError`` rather than being skipped.
    """
    series: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels: dict[str, str] = {}
        name = body
        if body.endswith("}"):
            name, _, label_text = body.partition("{")
            label_text = label_text[:-1]
            for part in _split_labels(label_text):
                key, _, value = part.partition("=")
                if not (value.startswith('"') and value.endswith('"')):
                    raise ValueError(f"bad label in line: {line!r}")
                labels[key] = (value[1:-1].replace('\\"', '"')
                               .replace("\\n", "\n").replace("\\\\", "\\"))
        series.setdefault(name, {})[_label_key(labels)] = float(raw_value)
    return series


def _split_labels(text: str) -> list[str]:
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and in_quotes:
            current.append(text[i:i + 2])
            i += 2
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    if current:
        parts.append("".join(current))
    return [part for part in parts if part]


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RESERVOIR",
    "SUMMARY_QUANTILES",
    "Counter",
    "Histogram",
    "Summary",
    "TelemetryRegistry",
    "parse_exposition",
]
