"""Evaluation metrics (paper Sec. 6.1.3 and Appendix E)."""

from repro.metrics.fairness import dcfg, ndcfg
from repro.metrics.utility import relative_error
from repro.metrics.runtime import CacheStats, Stopwatch

__all__ = ["CacheStats", "Stopwatch", "dcfg", "ndcfg", "relative_error"]
