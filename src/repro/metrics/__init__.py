"""Evaluation metrics (paper Sec. 6.1.3 and Appendix E) plus the
serving-side telemetry registry behind ``/v1/metrics``."""

from repro.metrics.fairness import dcfg, ndcfg
from repro.metrics.utility import relative_error
from repro.metrics.runtime import CacheStats, Stopwatch
from repro.metrics.telemetry import TelemetryRegistry, parse_exposition

__all__ = ["CacheStats", "Stopwatch", "TelemetryRegistry", "dcfg",
           "ndcfg", "parse_exposition", "relative_error"]
