"""``repro monitor``: a dependency-free heartbeat watcher for a daemon.

One monitor scrapes a running ``repro serve``'s ``/v1/metrics`` endpoint
on an interval, compares consecutive samples, and alerts on the
conditions an operator actually pages on:

* **failed/stale scrape** — the endpoint unreachable, non-200, or the
  server's ``repro_uptime_seconds`` not advancing between samples
  (a frozen or restarted daemon).
* **ledger lag** — ``repro_ledger_lag_records`` above an absolute bound,
  or growing faster per interval than the growth bound (the write-ahead
  ledger outrunning checkpoint compaction).
* **worker crashes** — any increase in ``repro_mp_crashes_total``
  (each one is a SIGKILLed/faulted mp worker the parent restarted).
* **429 spike** — ``repro_rate_limited_total`` climbing faster than the
  allowed rate (admission control refusing a meaningful share of load).
* **budget exhaustion** — any ``repro_exhaustion_seconds`` forecast
  (the audit trail's linear seconds-to-cap projection, per analyst)
  dropping below ``--exhaustion-horizon`` (0 disables the check; idle
  analysts project ``+Inf`` and never alert).

Alerts go to stderr and (optionally) a webhook file — one JSON object
per line, the shape a thin forwarder can tail into a real pager.  The
CLI exits nonzero when any alert fired, so ``repro monitor --once`` is a
usable cron/CI probe as-is.

The evaluation logic (:func:`evaluate`) is pure — two parsed metric
samples in, alert strings out — so the tests exercise every alert
condition without a server or a clock.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from repro.metrics.telemetry import parse_exposition

#: Seconds between scrapes.
DEFAULT_INTERVAL = 10.0

#: Per-scrape HTTP timeout (seconds).
DEFAULT_TIMEOUT = 5.0

#: Absolute ledger-lag bound (records not yet folded into a checkpoint).
DEFAULT_MAX_LEDGER_LAG = 10_000

#: Largest tolerated ledger-lag *increase* between consecutive scrapes.
DEFAULT_MAX_LEDGER_LAG_GROWTH = 1_000

#: Largest tolerated 429 rate (refusals/second) between scrapes.
DEFAULT_MAX_RATE_LIMITED_RATE = 5.0

#: Exhaustion-forecast alert horizon in seconds (0 = disabled): warn
#: when any analyst's projected seconds-to-cap falls below it.
DEFAULT_EXHAUSTION_HORIZON = 0.0

#: Parsed exposition: ``{metric_name: {label_key: value}}``.
Sample = dict


def scrape(url: str, timeout: float = DEFAULT_TIMEOUT) -> Sample:
    """Fetch and parse one ``/v1/metrics`` exposition from ``url`` (the
    daemon's base url, with or without the path)."""
    target = url.rstrip("/")
    if not target.endswith("/v1/metrics"):
        target += "/v1/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as reply:
        text = reply.read().decode("utf-8")
    return parse_exposition(text)


def family_total(sample: Sample, name: str) -> float:
    """Sum a metric family over every label set (0.0 when absent)."""
    values = sample.get(name)
    return float(sum(values.values())) if values else 0.0


def evaluate(prev: Sample | None, cur: Sample, *,
             interval: float = DEFAULT_INTERVAL,
             max_ledger_lag: float = DEFAULT_MAX_LEDGER_LAG,
             max_ledger_lag_growth: float = DEFAULT_MAX_LEDGER_LAG_GROWTH,
             max_rate_limited_rate: float = DEFAULT_MAX_RATE_LIMITED_RATE,
             exhaustion_horizon: float = DEFAULT_EXHAUSTION_HORIZON,
             ) -> list[str]:
    """Alert strings for the sample ``cur`` given the previous one.

    ``prev is None`` (the first sample, or ``--once``) limits the checks
    to absolute conditions; the delta checks (crash increase, 429 rate,
    lag growth, stale uptime) need two samples by nature.
    """
    alerts: list[str] = []

    lag = family_total(cur, "repro_ledger_lag_records")
    if lag > max_ledger_lag:
        alerts.append(f"ledger lag at {lag:.0f} records exceeds the "
                      f"{max_ledger_lag:.0f}-record bound (checkpoint "
                      f"compaction is not keeping up)")

    if exhaustion_horizon > 0.0:
        for labels, seconds in sorted(
                cur.get("repro_exhaustion_seconds", {}).items()):
            if seconds < exhaustion_horizon:
                analyst = dict(labels).get("analyst", "?")
                alerts.append(
                    f"analyst {analyst!r} is projected to exhaust its "
                    f"budget in {seconds:.0f}s (< {exhaustion_horizon:.0f}s "
                    f"horizon) at the current burn rate")

    if prev is not None:
        uptime_prev = family_total(prev, "repro_uptime_seconds")
        uptime_cur = family_total(cur, "repro_uptime_seconds")
        # uptime_prev == 0.0 means the prior sample carried no uptime
        # evidence at all (family_total reads an absent family as 0.0 —
        # e.g. a monitor primed with an empty first sample): with
        # nothing to compare against, "did not advance" would be a
        # false staleness page on the very first real scrape.
        if uptime_prev > 0.0 and uptime_cur <= uptime_prev:
            alerts.append(
                f"server uptime did not advance between scrapes "
                f"({uptime_prev:.1f}s -> {uptime_cur:.1f}s): stale "
                f"metrics or a daemon restart")

        lag_growth = lag - family_total(prev, "repro_ledger_lag_records")
        if lag_growth > max_ledger_lag_growth:
            alerts.append(
                f"ledger lag grew by {lag_growth:.0f} records in one "
                f"interval (bound {max_ledger_lag_growth:.0f})")

        crashes = family_total(cur, "repro_mp_crashes_total") \
            - family_total(prev, "repro_mp_crashes_total")
        if crashes > 0:
            alerts.append(f"{crashes:.0f} mp worker crash(es) since the "
                          f"last scrape (workers were restarted; check "
                          f"the daemon's stderr)")

        refused = family_total(cur, "repro_rate_limited_total") \
            - family_total(prev, "repro_rate_limited_total")
        rate = refused / interval if interval > 0 else refused
        if rate > max_rate_limited_rate:
            alerts.append(
                f"admission control refused {refused:.0f} submissions "
                f"({rate:.1f}/s) since the last scrape (bound "
                f"{max_rate_limited_rate:g}/s)")

    return alerts


def _write_webhook(path: str, url: str, alert: str) -> None:
    """Append one JSON-lines alert record (best-effort: a full disk must
    not kill the monitor that is reporting the outage)."""
    record = {"ts": time.time(), "target": url, "alert": alert}
    try:
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(json.dumps(record) + "\n")
    except OSError as exc:
        print(f"repro monitor: webhook file {path} unwritable: {exc}",
              file=sys.stderr, flush=True)


def run_monitor(url: str, *,
                interval: float = DEFAULT_INTERVAL,
                samples: int | None = None,
                timeout: float = DEFAULT_TIMEOUT,
                max_ledger_lag: float = DEFAULT_MAX_LEDGER_LAG,
                max_ledger_lag_growth: float =
                DEFAULT_MAX_LEDGER_LAG_GROWTH,
                max_rate_limited_rate: float =
                DEFAULT_MAX_RATE_LIMITED_RATE,
                exhaustion_horizon: float = DEFAULT_EXHAUSTION_HORIZON,
                webhook_path: str | None = None,
                sleep=time.sleep) -> int:
    """Scrape-evaluate-report until ``samples`` scrapes have run
    (``None`` = forever, i.e. until SIGINT).  Returns the number of
    alerts fired — the CLI maps any nonzero count onto a nonzero exit.
    """
    prev: Sample | None = None
    fired = 0
    taken = 0
    while samples is None or taken < samples:
        if taken:
            sleep(interval)
        try:
            cur = scrape(url, timeout=timeout)
        except (OSError, urllib.error.URLError, ValueError) as exc:
            alerts = [f"scrape of {url} failed: {exc}"]
            cur = None
        else:
            alerts = evaluate(
                prev, cur, interval=interval,
                max_ledger_lag=max_ledger_lag,
                max_ledger_lag_growth=max_ledger_lag_growth,
                max_rate_limited_rate=max_rate_limited_rate,
                exhaustion_horizon=exhaustion_horizon)
        taken += 1
        if cur is not None:
            prev = cur
        for alert in alerts:
            fired += 1
            print(f"repro monitor: ALERT {alert}", file=sys.stderr,
                  flush=True)
            if webhook_path:
                _write_webhook(webhook_path, url, alert)
        if not alerts and cur is not None:
            print(f"repro monitor: ok — "
                  f"submitted={family_total(cur, 'repro_service_submitted_total'):.0f} "
                  f"answered={family_total(cur, 'repro_service_answered_total'):.0f} "
                  f"ledger_lag={family_total(cur, 'repro_ledger_lag_records'):.0f} "
                  f"rate_limited={family_total(cur, 'repro_rate_limited_total'):.0f}",
                  flush=True)
    return fired


__all__ = [
    "DEFAULT_EXHAUSTION_HORIZON",
    "DEFAULT_INTERVAL",
    "DEFAULT_MAX_LEDGER_LAG",
    "DEFAULT_MAX_LEDGER_LAG_GROWTH",
    "DEFAULT_MAX_RATE_LIMITED_RATE",
    "DEFAULT_TIMEOUT",
    "evaluate",
    "family_total",
    "run_monitor",
    "scrape",
]
