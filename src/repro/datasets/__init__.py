"""Synthetic datasets matching the paper's evaluation data.

The paper evaluates on the UCI Adult census table (15 attributes, ~45k rows)
and on TPC-H at 1 GB.  Neither raw dataset is available offline here, so this
subpackage ships seeded synthetic generators that reproduce the *schemas*,
*domain sizes* and *row-count scales* of both.  Every mechanism sees the same
synthetic instance, so the comparative results (who answers more queries, how
budgets deplete) exercise the same code paths as the originals; absolute
counts differ, which the paper's evaluation does not depend on.
"""

from repro.datasets.base import DatasetBundle
from repro.datasets.adult import load_adult, ADULT_NUM_ROWS
from repro.datasets.tpch import load_tpch, TPCH_DEFAULT_LINEITEM_ROWS

__all__ = [
    "ADULT_NUM_ROWS",
    "DatasetBundle",
    "TPCH_DEFAULT_LINEITEM_ROWS",
    "load_adult",
    "load_tpch",
]
