"""Synthetic TPC-H-shaped dataset.

The paper runs its runtime and BFS experiments on TPC-H at scale factor 1
(1 GB, ~6M ``lineitem`` rows) stored in PostgreSQL.  Reproducing that scale in
pure Python would only slow the harness without changing any comparison, so
the generator defaults to a reduced scale (60k ``lineitem`` rows, 15k
``orders`` rows — the 1:4 TPC-H row ratio) while keeping the TPC-H attribute
domains: quantities 1..50, discounts 0..10%, the seven ship modes, the
three return flags, order dates spread over the 1992-1998 TPC-H window
(bucketised by month).  Pass a larger ``scale`` for stress runs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.db.database import Database
from repro.db.schema import Attribute, CategoricalDomain, IntegerDomain, Schema
from repro.db.table import Table
from repro.dp.rng import SeedLike, ensure_generator

#: Default lineitem row count (scale 0.01 of TPC-H SF1, row-ratio preserved).
TPCH_DEFAULT_LINEITEM_ROWS = 60000

RETURNFLAG = ("R", "A", "N")
LINESTATUS = ("O", "F")
SHIPMODE = ("REG_AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
ORDERSTATUS = ("O", "F", "P")
ORDERPRIORITY = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT_SPECIFIED", "5-LOW")

#: TPC-H dates span 1992-01 .. 1998-12: 84 month buckets.
NUM_MONTHS = 84


def lineitem_schema() -> Schema:
    return Schema([
        Attribute("quantity", IntegerDomain(1, 50)),
        Attribute("discount", IntegerDomain(0, 10)),       # percent
        Attribute("tax", IntegerDomain(0, 8)),             # percent
        Attribute("returnflag", CategoricalDomain(RETURNFLAG)),
        Attribute("linestatus", CategoricalDomain(LINESTATUS)),
        Attribute("shipmode", CategoricalDomain(SHIPMODE)),
        Attribute("shipdate", IntegerDomain(0, NUM_MONTHS - 1)),
        Attribute("extendedprice", IntegerDomain(0, 99)),  # centile bins
    ])


def orders_schema() -> Schema:
    return Schema([
        Attribute("orderstatus", CategoricalDomain(ORDERSTATUS)),
        Attribute("orderpriority", CategoricalDomain(ORDERPRIORITY)),
        Attribute("orderdate", IntegerDomain(0, NUM_MONTHS - 1)),
        Attribute("totalprice", IntegerDomain(0, 99)),     # centile bins
        Attribute("shippriority", IntegerDomain(0, 1)),
    ])


def generate_lineitem(num_rows: int, rng: np.random.Generator) -> Table:
    n = num_rows
    shipdate = rng.integers(0, NUM_MONTHS, n)
    columns = {
        "quantity": rng.integers(1, 51, n),
        "discount": rng.integers(0, 11, n),
        "tax": rng.integers(0, 9, n),
        "returnflag": rng.choice(3, size=n, p=[0.25, 0.25, 0.50]),
        "linestatus": rng.choice(2, size=n, p=[0.5, 0.5]),
        "shipmode": rng.integers(0, len(SHIPMODE), n),
        "shipdate": shipdate,
        # Price correlates with quantity; binned to percentiles of the range.
        "extendedprice": np.clip(
            (rng.integers(1, 51, n) * 2 + rng.integers(0, 20, n)), 0, 99
        ),
    }
    return Table(lineitem_schema(), columns)


def generate_orders(num_rows: int, rng: np.random.Generator) -> Table:
    n = num_rows
    columns = {
        "orderstatus": rng.choice(3, size=n, p=[0.49, 0.49, 0.02]),
        "orderpriority": rng.integers(0, len(ORDERPRIORITY), n),
        "orderdate": rng.integers(0, NUM_MONTHS, n),
        "totalprice": np.clip(rng.normal(50, 22, n).round().astype(np.int64), 0, 99),
        "shippriority": np.zeros(n, dtype=np.int64),
    }
    return Table(orders_schema(), columns)


#: Attributes over which the experiments build one histogram view each.
TPCH_VIEW_ATTRIBUTES = (
    "quantity", "discount", "tax", "returnflag", "linestatus", "shipmode",
    "shipdate", "extendedprice",
)


def load_tpch(lineitem_rows: int = TPCH_DEFAULT_LINEITEM_ROWS,
              seed: SeedLike = 0) -> DatasetBundle:
    """Build the TPC-H bundle; ``lineitem`` is the fact table."""
    rng = ensure_generator(seed)
    lineitem = generate_lineitem(lineitem_rows, rng)
    orders = generate_orders(max(1, lineitem_rows // 4), rng)
    db = Database({"lineitem": lineitem, "orders": orders})
    return DatasetBundle("tpch", db, "lineitem", TPCH_VIEW_ATTRIBUTES)


__all__ = [
    "NUM_MONTHS",
    "TPCH_DEFAULT_LINEITEM_ROWS",
    "TPCH_VIEW_ATTRIBUTES",
    "generate_lineitem",
    "generate_orders",
    "lineitem_schema",
    "load_tpch",
    "orders_schema",
]
