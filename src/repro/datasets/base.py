"""Common dataset container used by experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database


@dataclass(frozen=True)
class DatasetBundle:
    """A database plus the metadata experiments need.

    Attributes
    ----------
    name:
        Dataset tag ("adult", "tpch") used in reports and seeds.
    database:
        The catalog of relations.
    fact_table:
        Relation the query workloads target.
    view_attributes:
        Attributes over which one histogram view each is built (the paper
        generates "one histogram view on each attribute").
    """

    name: str
    database: Database
    fact_table: str
    view_attributes: tuple[str, ...]

    @property
    def num_rows(self) -> int:
        return self.database.table(self.fact_table).num_rows

    def delta_cap(self) -> float:
        """Upper cap for privacy-constraint deltas: 1 / dataset size."""
        return 1.0 / max(1, self.num_rows)


__all__ = ["DatasetBundle"]
