"""Synthetic Adult census dataset.

Mirrors the UCI Adult table the paper evaluates on: 15 attributes and 45,224
rows.  Values are drawn from marginal distributions shaped like the real
data's (age skewed toward working years, income correlated with education and
hours, capital gain/loss mostly zero) so that range-query answers have the
realistic mix of dense and sparse regions the BFS task relies on.
Large-cardinality numeric columns (fnlwgt, capital gain/loss) are binned into
100 buckets, matching the domain-discretisation treatment in the paper's
Appendix D.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.db.database import Database
from repro.db.schema import Attribute, CategoricalDomain, IntegerDomain, Schema
from repro.db.table import Table
from repro.dp.rng import SeedLike, ensure_generator

#: Row count of the paper's Adult snapshot.
ADULT_NUM_ROWS = 45224

WORKCLASS = ("private", "self_emp_not_inc", "self_emp_inc", "federal_gov",
             "local_gov", "state_gov", "without_pay", "never_worked", "unknown")
EDUCATION = ("preschool", "grade_1st_4th", "grade_5th_6th", "grade_7th_8th",
             "grade_9th", "grade_10th", "grade_11th", "grade_12th", "hs_grad",
             "some_college", "assoc_voc", "assoc_acdm", "bachelors", "masters",
             "prof_school", "doctorate")
MARITAL = ("married_civ", "divorced", "never_married", "separated", "widowed",
           "married_absent", "married_af")
OCCUPATION = ("tech_support", "craft_repair", "other_service", "sales",
              "exec_managerial", "prof_specialty", "handlers_cleaners",
              "machine_op_inspct", "adm_clerical", "farming_fishing",
              "transport_moving", "priv_house_serv", "protective_serv",
              "armed_forces", "unknown")
RELATIONSHIP = ("wife", "own_child", "husband", "not_in_family",
                "other_relative", "unmarried")
RACE = ("white", "black", "asian_pac_islander", "amer_indian_eskimo", "other")
SEX = ("female", "male")
COUNTRIES = tuple(f"country_{i:02d}" for i in range(42))
INCOME = ("le_50k", "gt_50k")


def adult_schema() -> Schema:
    """The 15-attribute Adult schema with explicit finite domains."""
    return Schema([
        Attribute("age", IntegerDomain(17, 90)),
        Attribute("workclass", CategoricalDomain(WORKCLASS)),
        Attribute("fnlwgt", IntegerDomain(0, 99)),
        Attribute("education", CategoricalDomain(EDUCATION)),
        Attribute("education_num", IntegerDomain(1, 16)),
        Attribute("marital_status", CategoricalDomain(MARITAL)),
        Attribute("occupation", CategoricalDomain(OCCUPATION)),
        Attribute("relationship", CategoricalDomain(RELATIONSHIP)),
        Attribute("race", CategoricalDomain(RACE)),
        Attribute("sex", CategoricalDomain(SEX)),
        Attribute("capital_gain", IntegerDomain(0, 99)),
        Attribute("capital_loss", IntegerDomain(0, 99)),
        Attribute("hours_per_week", IntegerDomain(1, 99)),
        Attribute("native_country", CategoricalDomain(COUNTRIES)),
        Attribute("income", CategoricalDomain(INCOME)),
    ])


def _categorical(rng: np.random.Generator, n: int, size: int,
                 concentration: float = 1.2) -> np.ndarray:
    """Skewed categorical codes via a Dirichlet-weighted draw."""
    weights = rng.dirichlet(np.full(size, concentration))
    # Sort descending so code 0 is always the modal class (like "private").
    weights = np.sort(weights)[::-1]
    return rng.choice(size, size=n, p=weights)


def generate_adult_table(num_rows: int = ADULT_NUM_ROWS,
                         seed: SeedLike = 0) -> Table:
    """Generate the synthetic Adult relation deterministically from ``seed``."""
    rng = ensure_generator(seed)
    schema = adult_schema()
    n = num_rows

    age = np.clip(rng.normal(38.5, 13.5, n).round().astype(np.int64), 17, 90)
    education_codes = _categorical(rng, n, len(EDUCATION), concentration=0.8)
    # education_num tracks education with mild jitter, clipped to its domain.
    education_num = np.clip(education_codes + 1
                            + rng.integers(-1, 2, n), 1, 16).astype(np.int64)
    hours = np.clip(rng.normal(40.4, 12.3, n).round().astype(np.int64), 1, 99)

    # Capital gain/loss: zero-inflated, binned to 100 buckets.
    gain = np.where(rng.random(n) < 0.92, 0,
                    rng.integers(1, 100, n)).astype(np.int64)
    loss = np.where(rng.random(n) < 0.95, 0,
                    rng.integers(1, 100, n)).astype(np.int64)

    # Income correlates with education, hours and age (logistic score).
    score = (0.25 * (education_num - 8) + 0.04 * (hours - 40)
             + 0.02 * (age - 38) + rng.normal(0.0, 1.0, n) - 1.1)
    income = (score > 0).astype(np.int64)

    columns = {
        "age": age,
        "workclass": _categorical(rng, n, len(WORKCLASS), 0.7),
        "fnlwgt": rng.integers(0, 100, n),
        "education": education_codes,
        "education_num": education_num,
        "marital_status": _categorical(rng, n, len(MARITAL)),
        "occupation": _categorical(rng, n, len(OCCUPATION)),
        "relationship": _categorical(rng, n, len(RELATIONSHIP)),
        "race": _categorical(rng, n, len(RACE), 0.5),
        "sex": rng.choice(2, size=n, p=[0.33, 0.67]),
        "capital_gain": gain,
        "capital_loss": loss,
        "hours_per_week": hours,
        "native_country": _categorical(rng, n, len(COUNTRIES), 0.25),
        "income": income,
    }
    return Table(schema, columns)


#: Attributes the experiments build one histogram view over each.
ADULT_VIEW_ATTRIBUTES = (
    "age", "workclass", "education", "education_num", "marital_status",
    "occupation", "relationship", "race", "sex", "hours_per_week",
    "native_country", "income", "fnlwgt", "capital_gain", "capital_loss",
)


def load_adult(num_rows: int = ADULT_NUM_ROWS, seed: SeedLike = 0) -> DatasetBundle:
    """Build the Adult dataset bundle used throughout the experiments."""
    table = generate_adult_table(num_rows, seed)
    db = Database({"adult": table})
    return DatasetBundle("adult", db, "adult", ADULT_VIEW_ATTRIBUTES)


__all__ = [
    "ADULT_NUM_ROWS",
    "ADULT_VIEW_ATTRIBUTES",
    "adult_schema",
    "generate_adult_table",
    "load_adult",
]
