"""Legacy setup shim: enables `pip install -e . --no-use-pep517` in the
offline environment (no wheel package available for PEP 660 builds)."""

from setuptools import setup

setup()
