"""DP GROUP BY and aggregate queries over full-domain views (Appendix D).

Shows the DP-safe ``GROUP BY`` semantics: every domain value gets a (noisy)
row — including values with zero rows, so the active domain is not leaked —
plus SUM/AVG answered as weighted linear queries over histogram synopses.

Run:  python examples/group_by_and_aggregates.py
"""

from repro import Analyst, DProvDB, load_adult


def main() -> None:
    bundle = load_adult(seed=5)
    engine = DProvDB(bundle, [Analyst("analyst", privilege=5)],
                     epsilon=3.2, seed=5)

    # --- GROUP BY over the full domain --------------------------------------
    sql = "SELECT race, COUNT(*) FROM adult GROUP BY race"
    exact = bundle.database.execute(sql).as_dict()
    print(f"{sql}\n")
    print(f"{'race':22s} {'noisy':>10s} {'exact':>10s} {'charged eps':>12s}")
    for (race,), answer in engine.submit_group_by("analyst", sql,
                                                  accuracy=2500.0):
        print(f"{race:22s} {answer.value:10.1f} {exact.get(race, 0):10.0f} "
              f"{answer.epsilon_charged:12.4f}")
    print("(groups after the first are cache hits: one synopsis, one charge)\n")

    # --- SUM and AVG ----------------------------------------------------------
    # A SUM over one attribute filtered by another needs a 2-way view; the
    # water-filling constraint setting lets us add views online (Def. 12).
    engine.register_view(("age", "hours_per_week"))
    for sql in ("SELECT SUM(hours_per_week) FROM adult WHERE age BETWEEN 25 AND 35",
                "SELECT AVG(hours_per_week) FROM adult"):
        exact_value = bundle.database.execute(sql).scalar()
        answer = engine.submit("analyst", sql, accuracy=4e8)
        print(f"{sql}\n  noisy={answer.value:,.1f}  exact={exact_value:,.1f}\n")

    # --- A conditioned histogram, full-domain, noisy-zero rows included ------
    sql = ("SELECT workclass, COUNT(*) FROM adult "
           "WHERE workclass IN ('never_worked', 'without_pay', 'private') "
           "GROUP BY workclass")
    print(sql)
    for (workclass,), answer in engine.submit_group_by("analyst", sql,
                                                       accuracy=2500.0):
        marker = " (excluded by predicate -> exact 0, no budget)" \
            if answer.epsilon_charged == 0 and answer.value == 0 else ""
        print(f"  {workclass:20s} {answer.value:10.1f}{marker}")


if __name__ == "__main__":
    main()
