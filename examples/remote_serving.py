"""Serving DProvDB over the network: daemon + two remote analysts.

Starts an in-process :class:`repro.ReproServer` on an ephemeral port
(the same daemon ``python -m repro serve`` runs), then drives it with
two :class:`repro.RemoteAnalyst` clients — one scalar query, one GROUP
BY, one batch through the server-side planner — and shows that the
provenance accounting observable over the wire matches what the service
records, before shutting down with a graceful drain.

Run with::

    PYTHONPATH=src python examples/remote_serving.py
"""

from repro import (
    Analyst,
    QueryRequest,
    QueryService,
    RemoteAnalyst,
    ReproServer,
    load_adult,
)


def main() -> None:
    bundle = load_adult(num_rows=5000, seed=7)
    service = QueryService.build(
        bundle,
        [Analyst("alice", privilege=6), Analyst("bob", privilege=2)],
        epsilon=8.0, seed=7,
    )
    # Tokens map onto analyst identities server-side; a client never
    # names an analyst on the wire.
    server = ReproServer(service, tokens={"alice-secret": "alice",
                                          "bob-secret": "bob"}).start()
    print(f"daemon listening on {server.url}")

    with RemoteAnalyst(server.url, token="alice-secret") as alice:
        session = alice.open_session()
        print(f"alice opened session {session.session_id}")

        scalar = alice.submit(
            session,
            "SELECT COUNT(*) FROM adult WHERE age BETWEEN 30 AND 40",
            accuracy=2500.0)
        print(f"count ~ {scalar.value():.1f} "
              f"(eps charged {scalar.answer.epsilon_charged:.4f})")

        groups = alice.submit(
            session, "SELECT sex, COUNT(*) FROM adult GROUP BY sex",
            accuracy=2500.0)
        for key, answer in groups.groups:
            print(f"  {key[0]:>7s}: ~{answer.value:.1f}")

        batch = alice.submit_batch(session, [
            QueryRequest("SELECT COUNT(*) FROM adult WHERE "
                         "hours_per_week BETWEEN 35 AND 45",
                         accuracy=2500.0),
            QueryRequest("SELECT COUNT(*) FROM adult WHERE "
                         "age BETWEEN 30 AND 40", accuracy=2500.0),
        ])
        print(f"batch answered {sum(r.ok for r in batch)}/2, "
              f"cache hits {sum(r.ok and r.answer.cache_hit for r in batch)}")

    with RemoteAnalyst(server.url, token="bob-secret") as bob:
        session = bob.open_session()
        low_privilege = bob.submit(
            session,
            "SELECT COUNT(*) FROM adult WHERE age BETWEEN 30 AND 40",
            accuracy=2500.0)
        status = (f"~{low_privilege.value():.1f}" if low_privilege.ok
                  else f"refused ({low_privilege.error})")
        print(f"bob (privilege 2) asks the same range: {status}")

        snapshot = bob.snapshot()
        print("epsilon by analyst, observed over the wire:",
              {name: round(spent, 4) for name, spent in
               snapshot["provenance"]["epsilon_by_analyst"].items()})

    server.shutdown()
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
