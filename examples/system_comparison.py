"""Compare DProvDB against the paper's baselines on one RRQ workload.

A compact version of the paper's end-to-end experiment (Fig. 3): the same
randomized-range-query workload is fed to all five systems at a fixed
overall budget, and the number of answered queries plus the nDCFG fairness
score are reported.

Run:  python examples/system_comparison.py
"""

from repro.datasets import load_adult
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_workload
from repro.experiments.systems import SYSTEM_NAMES, default_analysts, make_system
from repro.workloads.rrq import generate_rrq
from repro.workloads.scheduler import interleave_round_robin


def main() -> None:
    epsilon = 1.6
    analysts = default_analysts((1, 4))

    rows = []
    for name in SYSTEM_NAMES:
        bundle = load_adult(num_rows=20000, seed=0)
        workload = generate_rrq(bundle, analysts, queries_per_analyst=300,
                                accuracy=10000.0, seed=1)
        items = interleave_round_robin(workload)
        system = make_system(name, bundle, analysts, epsilon, seed=2)
        result = run_workload(system, items, epsilon, "round_robin")
        rows.append([
            name,
            result.total_answered,
            result.rejected,
            result.fairness(analysts),
            result.consumed,
            result.per_query_ms,
        ])

    print(format_table(
        ["system", "#answered", "#rejected", "nDCFG", "eps consumed",
         "per-query ms"],
        rows,
        title=f"RRQ workload, 600 queries, eps={epsilon}, analysts (1, 4)",
    ))


if __name__ == "__main__":
    main()
