"""Quickstart: multi-analyst DP querying with privacy provenance.

Two analysts with different privilege levels query the same synthetic census
table.  DProvDB answers both from one shared (hidden) global synopsis: the
high-privilege analyst gets a more accurate answer, the low-privilege one a
noisier, *correlated* answer — and even if they collude, the total privacy
loss stays bounded by the budget spent on the global synopsis.

Run:  python examples/quickstart.py
"""

from repro import Analyst, DProvDB, load_adult


def main() -> None:
    # 1. Load data and register analysts with privilege levels (1..10).
    bundle = load_adult(seed=7)
    internal = Analyst("internal", privilege=8)
    external = Analyst("external", privilege=2)

    # 2. Build the engine: overall budget eps=2.0, additive Gaussian approach.
    engine = DProvDB(bundle, [internal, external], epsilon=2.0, seed=7)

    sql = "SELECT COUNT(*) FROM adult WHERE age BETWEEN 30 AND 40"
    exact = bundle.database.execute(sql).scalar()
    print(f"query: {sql}")
    print(f"exact answer (curator-side only): {exact:.0f}\n")

    # 3. Accuracy-oriented mode: bound the expected squared error.
    a = engine.submit("internal", sql, accuracy=400.0)
    print(f"internal  -> {a.value:10.1f}   (+-{a.answer_variance ** 0.5:6.1f} "
          f"std, charged eps={a.epsilon_charged:.3f})")

    b = engine.submit("external", sql, accuracy=40000.0)
    print(f"external  -> {b.value:10.1f}   (+-{b.answer_variance ** 0.5:6.1f} "
          f"std, charged eps={b.epsilon_charged:.3f})")

    # 4. Repeats are served from cached synopses — free.
    again = engine.submit("external", sql, accuracy=40000.0)
    print(f"external (repeat) -> cache_hit={again.cache_hit}, "
          f"charged eps={again.epsilon_charged}\n")

    # 5. Privacy-oriented mode also works: spend an explicit budget.
    c = engine.submit("internal",
                      "SELECT COUNT(*) FROM adult WHERE hours_per_week >= 50",
                      epsilon=0.3)
    print(f"privacy-oriented submit -> {c.value:.1f} "
          f"(view {c.view_name})\n")

    # 6. Provenance: who consumed what, and the worst-case collusion loss.
    print("per-analyst consumption:")
    for name in ("internal", "external"):
        print(f"  {name:9s} {engine.analyst_consumed(name):.3f} "
              f"(limit {engine.constraints.analyst_limit(name):.3f})")
    print(f"collusion bound: {engine.collusion_bound():.3f} "
          f"(table constraint {engine.constraints.table})")


if __name__ == "__main__":
    main()
