"""Operational features: cost quotes, delegation grants, state snapshots.

DProvDB is a *stateful* system.  This example exercises the operational
surface a deployment needs around that state:

* ``engine.quote`` — preview what a query would charge before asking it;
* delegation (paper Sec. 9) — a senior analyst grants an intern temporary
  use of their budget/synopses, capped, auditable, revocable;
* persistence — snapshot the provenance table, synopses and grants to JSON
  and restore them into a fresh engine (e.g. after a restart).

Run:  python examples/delegation_and_persistence.py
"""

import tempfile
from pathlib import Path

from repro import Analyst, DProvDB, load_adult
from repro.core.persistence import load_engine_state, save_engine_state


def main() -> None:
    bundle = load_adult(seed=13)
    analysts = [Analyst("senior", privilege=8), Analyst("intern", privilege=1)]
    engine = DProvDB(bundle, analysts, epsilon=2.0, seed=13)

    sql = "SELECT COUNT(*) FROM adult WHERE education_num >= 13"

    # --- quotes ---------------------------------------------------------------
    cost = engine.quote("senior", sql, accuracy=2500.0)
    print(f"quoted cost for senior: eps={cost:.4f} "
          f"(limit {engine.constraints.analyst_limit('senior')})")

    # --- delegation -----------------------------------------------------------
    grant = engine.grant_delegation("senior", "intern",
                                    epsilon_cap=cost * 1.5)
    print(f"grant #{grant}: senior -> intern, cap eps={cost * 1.5:.4f}")

    answer = engine.submit("intern", sql, accuracy=2500.0, delegation=grant)
    print(f"intern (delegated) -> {answer.value:.1f}, "
          f"charged to senior: eps={answer.epsilon_charged:.4f}")
    print(f"  senior consumed: {engine.analyst_consumed('senior'):.4f}, "
          f"intern consumed: {engine.analyst_consumed('intern'):.4f}")

    for g in engine.delegations.audit("senior"):
        print(f"  audit: grant #{g.grant_id} -> {g.grantee}: "
              f"{g.queries} queries, eps={g.consumed:.4f} "
              f"(remaining {g.remaining:.4f})")
    engine.revoke_delegation(grant)
    print("  grant revoked\n")

    # --- persistence ------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dprovdb-state.json"
        save_engine_state(engine, path)
        print(f"snapshot written: {path.stat().st_size} bytes")

        revived = DProvDB(bundle, analysts, epsilon=2.0, seed=99)
        load_engine_state(revived, path)
        repeat = revived.submit("senior", sql, accuracy=2500.0)
        print(f"after restore: repeat query cache_hit={repeat.cache_hit}, "
              f"value={repeat.value:.1f} (same synopsis, zero charge)")
        print(f"restored consumption ledgers: "
              f"senior={revived.analyst_consumed('senior'):.4f}")


if __name__ == "__main__":
    main()
