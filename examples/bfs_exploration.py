"""Domain exploration: find under-represented regions with a BFS task.

Reproduces the paper's BFS workload (Sec. 6.1.2): each analyst walks a
binary decomposition tree over an attribute's domain, splitting ranges whose
noisy count exceeds a threshold and reporting ranges at or below it.  The
workload is adaptive — every next query depends on previous noisy answers —
and the view-based engine answers almost all of it from cached synopses.

Run:  python examples/bfs_exploration.py
"""

from repro import Analyst, DProvDB, load_adult
from repro.workloads.bfs import make_explorers, run_bfs_workload


def main() -> None:
    bundle = load_adult(seed=3)
    analysts = [Analyst("auditor", privilege=4), Analyst("intern", privilege=1)]
    engine = DProvDB(bundle, analysts, epsilon=6.4, seed=3)
    engine.setup()

    explorers = make_explorers(
        bundle, analysts, threshold=500.0, accuracy=40000.0,
        attributes=("age", "hours_per_week", "education_num"),
    )
    trace = run_bfs_workload(engine, explorers, schedule="round_robin",
                             max_steps=5000)

    print(f"BFS finished: {trace.total_queries} queries issued, "
          f"{trace.total_answered} answered")
    print(f"final cumulative budget: {trace.cumulative_budgets()[-1]:.3f} "
          f"(table constraint {engine.constraints.table})\n")

    for explorer in trace.explorers:
        if explorer.analyst != "auditor" or not explorer.regions_found:
            continue
        print(f"under-represented regions of {explorer.attribute!r} "
              f"(noisy count <= {explorer.threshold:.0f}):")
        for low, high in explorer.regions_found[:8]:
            sql = (f"SELECT COUNT(*) FROM adult WHERE "
                   f"{explorer.attribute} BETWEEN {low} AND {high}")
            exact = bundle.database.execute(sql).scalar()
            print(f"  [{low:3d}, {high:3d}]  true count {exact:7.0f}")
        print()

    by_analyst = trace.answered_by()
    for analyst in analysts:
        print(f"{analyst.name:8s} answered={by_analyst.get(analyst.name, 0):4d} "
              f"consumed eps={engine.analyst_consumed(analyst.name):.3f}")


if __name__ == "__main__":
    main()
