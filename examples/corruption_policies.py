"""Policy-driven budgets under the (t, n)-compromised threat model.

Section 7.1 of the paper: when the administrator trusts that only small
coalitions of analysts can collude (encoded as a corruption graph), the
overall budget can be assigned *per connected component* — disjoint
coalitions each get the full table budget, so the system spends up to
k * psi_P in total while any coalition still observes at most psi_P.

Run:  python examples/corruption_policies.py
"""

from repro import Analyst, CorruptionGraph
from repro.experiments.reporting import format_table


def main() -> None:
    table_budget = 1.6

    # Six analysts: two internal teams that might share results internally,
    # plus two isolated external researchers.
    analysts = [
        Analyst("ml_eng_1", privilege=8),
        Analyst("ml_eng_2", privilege=6),
        Analyst("fraud_1", privilege=7),
        Analyst("fraud_2", privilege=5),
        Analyst("external_a", privilege=2),
        Analyst("external_b", privilege=1),
    ]
    edges = [("ml_eng_1", "ml_eng_2"), ("fraud_1", "fraud_2")]

    graph = CorruptionGraph(analysts, edges, t=2)
    print(f"corruption graph: {graph.n} analysts, t={graph.t}, "
          f"{graph.num_components} disjoint coalitions")
    for component in graph.components():
        print(f"  coalition: {sorted(component)}")

    print(f"\ntotal spendable budget: {graph.total_budget(table_budget):.2f} "
          f"(vs {table_budget} under all-collusion)\n")

    rows = []
    constraints_max = graph.component_constraints(table_budget, policy="max")
    constraints_prop = graph.component_constraints(table_budget,
                                                   policy="proportional")
    for analyst in analysts:
        rows.append([analyst.name, analyst.privilege,
                     constraints_max[analyst.name],
                     constraints_prop[analyst.name]])
    print(format_table(
        ["analyst", "privilege", "Def.11 (max)", "Def.10 (proportional)"],
        rows, title="per-analyst constraints, one psi_P per coalition",
    ))

    # Worst-case loss over coalitions given some realised consumption.
    consumed = {"ml_eng_1": 0.9, "ml_eng_2": 0.5, "fraud_1": 0.4,
                "fraud_2": 0.2, "external_a": 0.2, "external_b": 0.05}
    print(f"\nworst-case coalition loss: "
          f"{graph.collusion_bound(consumed):.2f} <= {table_budget}")


if __name__ == "__main__":
    main()
